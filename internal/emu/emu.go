// Package emu is the architectural (functional) simulator for TRISC-64. It
// plays the role SimpleScalar's sim-fast plays in the paper: it executes
// programs to architectural completion and streams committed-instruction
// records to the timing model, which replays them through the clustered
// pipeline. The emulator is the single source of truth for program semantics;
// the timing model never re-executes an instruction. That authority is what
// internal/conformance checks: its corpus pins this emulator's architectural
// results as goldens, and its differential fuzzer asserts the timing model
// retires exactly the record stream emitted here (see DESIGN.md §11).
package emu

import (
	"fmt"
	"math"

	"ctcp/internal/isa"
)

// Committed describes one architecturally executed instruction — everything
// the timing model needs: identity, control-flow outcome, and memory address.
type Committed struct {
	Seq    uint64   // 0-based commit sequence number
	PC     uint64   // instruction address
	Inst   isa.Inst // decoded instruction
	NextPC uint64   // address of the next committed instruction
	Taken  bool     // control flow only: branch/jump taken
	EA     uint64   // memory ops only: effective address
	Size   uint8    // memory ops only: access size in bytes
}

// IsTakenControl reports whether the record is a taken control transfer.
func (c Committed) IsTakenControl() bool { return c.Inst.IsControl() && c.Taken }

// Stream is a source of committed instructions in program order. Next
// returns ok=false when the stream is exhausted (program halted or an
// instruction budget was reached).
type Stream interface {
	Next() (Committed, bool)
}

// StreamInto is optionally implemented by streams that can write the next
// record in place. The pipeline pulls one Committed per simulated
// instruction, and the by-value Stream contract copies the record once per
// frame of the stream stack; implementations of StreamInto let that hottest
// edge write straight into the consumer's buffer. On ok=false *c is
// meaningless.
type StreamInto interface {
	Stream
	NextInto(c *Committed) bool
}

// Fault is an architectural execution error (bad PC, wild memory access).
type Fault struct {
	PC     uint64
	Reason string
}

func (f *Fault) Error() string { return fmt.Sprintf("emu: fault at pc=%#x: %s", f.PC, f.Reason) }

// Machine is one TRISC-64 hardware context.
type Machine struct {
	// Regs holds the unified register file: integer registers in 0–31, FP
	// registers (as IEEE-754 bit patterns) in 32–63.
	Regs [isa.NumRegs]uint64
	PC   uint64
	Mem  *Memory

	prog   *isa.Program
	halted bool
	seq    uint64
	fault  error

	// pred is the predecoded micro-op table, indexed by (PC-predBase)/
	// PCStride; see predecode.go. Derived state: built once at construction
	// from the immutable program image, kept across Reset, never serialized.
	pred     []uop
	predBase uint64

	// OutHash accumulates every OUT value into an order-sensitive checksum;
	// workloads use it as their self-check.
	OutHash uint64
	// OutValues retains the first few OUT values for debugging.
	OutValues []uint64
}

const maxRetainedOut = 64

// New creates a machine loaded with prog: memory is initialized with the data
// segment, PC is at the entry point, SP at the stack top, and GP at the data
// base.
func New(prog *isa.Program) *Machine {
	m := &Machine{Mem: NewMemory(), prog: prog}
	m.predecode()
	m.Reset()
	return m
}

// Reset reloads the program image and clears all architectural state.
func (m *Machine) Reset() {
	m.Regs = [isa.NumRegs]uint64{}
	m.Mem = NewMemory()
	m.Mem.WriteBytes(m.prog.DataBase, m.prog.Data)
	m.PC = m.prog.Entry
	if m.PC == 0 {
		m.PC = m.prog.TextBase
	}
	m.Regs[isa.SP] = isa.StackTop
	m.Regs[isa.GP] = m.prog.DataBase
	m.halted = false
	m.seq = 0
	m.fault = nil
	m.OutHash = 0
	m.OutValues = nil
}

// Halted reports whether the program has executed HALT or faulted.
func (m *Machine) Halted() bool { return m.halted }

// Err returns the fault that stopped the machine, or nil for a clean HALT.
func (m *Machine) Err() error { return m.fault }

// InstCount returns the number of committed instructions so far.
func (m *Machine) InstCount() uint64 { return m.seq }

func (m *Machine) get(r isa.Reg) uint64 {
	if r.IsZero() || r == isa.NoReg {
		return 0
	}
	return m.Regs[r]
}

func (m *Machine) getF(r isa.Reg) float64 { return math.Float64frombits(m.get(r)) }

func (m *Machine) set(r isa.Reg, v uint64) {
	if r.IsZero() || r == isa.NoReg {
		return
	}
	m.Regs[r] = v
}

func (m *Machine) setF(r isa.Reg, v float64) { m.set(r, math.Float64bits(v)) }

func boolQ(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func fpBool(b bool) float64 {
	if b {
		return 2.0 // Alpha convention: true compares write 2.0
	}
	return 0.0
}

// Next implements Stream: it executes one instruction and returns its
// committed record. ok=false after HALT or a fault.
func (m *Machine) Next() (Committed, bool) {
	var c Committed
	if !m.NextInto(&c) {
		return Committed{}, false
	}
	return c, true
}

// NextInto implements StreamInto: like Next, but writes the record into *c,
// skipping the by-value copy per return frame. On false *c is meaningless.
func (m *Machine) NextInto(c *Committed) bool {
	if m.halted {
		return false
	}
	if err := m.StepInto(c); err != nil {
		m.halted = true
		m.fault = err
		return false
	}
	return true
}

// Step executes exactly one instruction.
func (m *Machine) Step() (Committed, error) {
	var c Committed
	if err := m.StepInto(&c); err != nil {
		return Committed{}, err
	}
	return c, nil
}

// StepInto executes exactly one instruction, writing its committed record
// into *c. The Committed struct travels from the interpreter through the
// stream stack into the pipeline's fetch buffer once per simulated
// instruction, so this hottest edge is written in place; Step and Next are
// by-value conveniences layered on top. On error *c is partially written
// and must be ignored.
//
// Dispatch runs over the predecoded uop table (predecode.go): one
// bounds-checked index, one template copy, one switch on a dense tag.
// Operand roles, immediates, access sizes, and static control targets were
// all resolved at load time; the few shapes the table does not model defer
// to stepGeneric, the original interpreter.
func (m *Machine) StepInto(c *Committed) error {
	if m.halted {
		return &Fault{m.PC, "machine is halted"}
	}
	off := m.PC - m.predBase
	idx := off / isa.PCStride
	if off%isa.PCStride != 0 || idx >= uint64(len(m.pred)) {
		return &Fault{m.PC, "pc outside text segment"}
	}
	u := &m.pred[idx]
	*c = u.tmpl
	c.Seq = m.seq
	next := u.tmpl.NextPC
	r := &m.Regs

	switch u.kind {
	case uNop:

	case uAddRR:
		r[u.rc] = r[u.ra] + r[u.rb]
	case uAddRI:
		r[u.rc] = r[u.ra] + u.imm
	case uSubRR:
		r[u.rc] = r[u.ra] - r[u.rb]
	case uSubRI:
		r[u.rc] = r[u.ra] - u.imm
	case uAndRR:
		r[u.rc] = r[u.ra] & r[u.rb]
	case uAndRI:
		r[u.rc] = r[u.ra] & u.imm
	case uOrRR:
		r[u.rc] = r[u.ra] | r[u.rb]
	case uOrRI:
		r[u.rc] = r[u.ra] | u.imm
	case uXorRR:
		r[u.rc] = r[u.ra] ^ r[u.rb]
	case uXorRI:
		r[u.rc] = r[u.ra] ^ u.imm
	case uAndNotRR:
		r[u.rc] = r[u.ra] &^ r[u.rb]
	case uAndNotRI:
		r[u.rc] = r[u.ra] &^ u.imm
	case uSllRR:
		r[u.rc] = r[u.ra] << (r[u.rb] & 63)
	case uSllRI:
		r[u.rc] = r[u.ra] << u.imm
	case uSrlRR:
		r[u.rc] = r[u.ra] >> (r[u.rb] & 63)
	case uSrlRI:
		r[u.rc] = r[u.ra] >> u.imm
	case uSraRR:
		r[u.rc] = uint64(int64(r[u.ra]) >> (r[u.rb] & 63))
	case uSraRI:
		r[u.rc] = uint64(int64(r[u.ra]) >> u.imm)
	case uCmpEqRR:
		r[u.rc] = boolQ(r[u.ra] == r[u.rb])
	case uCmpEqRI:
		r[u.rc] = boolQ(r[u.ra] == u.imm)
	case uCmpLtRR:
		r[u.rc] = boolQ(int64(r[u.ra]) < int64(r[u.rb]))
	case uCmpLtRI:
		r[u.rc] = boolQ(int64(r[u.ra]) < int64(u.imm))
	case uCmpLeRR:
		r[u.rc] = boolQ(int64(r[u.ra]) <= int64(r[u.rb]))
	case uCmpLeRI:
		r[u.rc] = boolQ(int64(r[u.ra]) <= int64(u.imm))
	case uCmpUltRR:
		r[u.rc] = boolQ(r[u.ra] < r[u.rb])
	case uCmpUltRI:
		r[u.rc] = boolQ(r[u.ra] < u.imm)
	case uCmpUleRR:
		r[u.rc] = boolQ(r[u.ra] <= r[u.rb])
	case uCmpUleRI:
		r[u.rc] = boolQ(r[u.ra] <= u.imm)
	case uMulRR:
		r[u.rc] = r[u.ra] * r[u.rb]
	case uMulRI:
		r[u.rc] = r[u.ra] * u.imm
	case uDivRR, uDivRI:
		d := int64(r[u.rb])
		if u.kind == uDivRI {
			d = int64(u.imm)
		}
		if d == 0 {
			r[u.rc] = 0 // architectural: divide by zero yields zero
		} else {
			r[u.rc] = uint64(int64(r[u.ra]) / d)
		}
	case uRemRR, uRemRI:
		d := int64(r[u.rb])
		if u.kind == uRemRI {
			d = int64(u.imm)
		}
		if d == 0 {
			r[u.rc] = 0
		} else {
			r[u.rc] = uint64(int64(r[u.ra]) % d)
		}
	case uSextB:
		r[u.rc] = uint64(int64(int8(r[u.ra])))
	case uSextW:
		r[u.rc] = uint64(int64(int16(r[u.ra])))
	case uMovi:
		r[u.rc] = u.imm

	case uLd8:
		ea := r[u.ra] + u.imm
		c.EA = ea
		r[u.rc] = m.Mem.Read(ea, 8)
	case uLd4S:
		ea := r[u.ra] + u.imm
		c.EA = ea
		r[u.rc] = uint64(int64(int32(m.Mem.Read(ea, 4))))
	case uLd2:
		ea := r[u.ra] + u.imm
		c.EA = ea
		r[u.rc] = m.Mem.Read(ea, 2)
	case uLd1:
		ea := r[u.ra] + u.imm
		c.EA = ea
		r[u.rc] = m.Mem.Read(ea, 1)
	case uLdDiscard:
		ea := r[u.ra] + u.imm
		c.EA = ea
		_ = m.Mem.Read(ea, int(u.tmpl.Size))

	case uSt8:
		ea := r[u.ra] + u.imm
		c.EA = ea
		m.Mem.Write(ea, r[u.rb], 8)
	case uSt4:
		ea := r[u.ra] + u.imm
		c.EA = ea
		m.Mem.Write(ea, r[u.rb], 4)
	case uSt2:
		ea := r[u.ra] + u.imm
		c.EA = ea
		m.Mem.Write(ea, r[u.rb], 2)
	case uSt1:
		ea := r[u.ra] + u.imm
		c.EA = ea
		m.Mem.Write(ea, r[u.rb], 1)

	case uBeq:
		if int64(r[u.ra]) == 0 {
			c.Taken = true
			next = u.imm
		}
	case uBne:
		if int64(r[u.ra]) != 0 {
			c.Taken = true
			next = u.imm
		}
	case uBlt:
		if int64(r[u.ra]) < 0 {
			c.Taken = true
			next = u.imm
		}
	case uBle:
		if int64(r[u.ra]) <= 0 {
			c.Taken = true
			next = u.imm
		}
	case uBgt:
		if int64(r[u.ra]) > 0 {
			c.Taken = true
			next = u.imm
		}
	case uBge:
		if int64(r[u.ra]) >= 0 {
			c.Taken = true
			next = u.imm
		}
	case uFbeq:
		if math.Float64frombits(r[u.ra]) == 0 {
			c.Taken = true
			next = u.imm
		}
	case uFbne:
		if math.Float64frombits(r[u.ra]) != 0 {
			c.Taken = true
			next = u.imm
		}

	case uBr:
		c.Taken = true
		next = u.imm
	case uBrLink:
		c.Taken = true
		r[u.rc] = u.tmpl.NextPC
		next = u.imm
	case uJsr:
		c.Taken = true
		target := r[u.rb]
		r[u.rc] = u.tmpl.NextPC
		if target%isa.PCStride != 0 {
			return &Fault{m.PC, fmt.Sprintf("misaligned control target %#x", target)}
		}
		next = target
	case uJmp:
		c.Taken = true
		target := r[u.rb]
		if target%isa.PCStride != 0 {
			return &Fault{m.PC, fmt.Sprintf("misaligned control target %#x", target)}
		}
		next = target

	case uAddT:
		m.setF(isa.Reg(u.rc), math.Float64frombits(r[u.ra])+math.Float64frombits(r[u.rb]))
	case uSubT:
		m.setF(isa.Reg(u.rc), math.Float64frombits(r[u.ra])-math.Float64frombits(r[u.rb]))
	case uMulT:
		m.setF(isa.Reg(u.rc), math.Float64frombits(r[u.ra])*math.Float64frombits(r[u.rb]))
	case uDivT:
		m.setF(isa.Reg(u.rc), math.Float64frombits(r[u.ra])/math.Float64frombits(r[u.rb]))
	case uSqrtT:
		m.setF(isa.Reg(u.rc), math.Sqrt(math.Float64frombits(r[u.ra])))
	case uCmpTEq:
		m.setF(isa.Reg(u.rc), fpBool(math.Float64frombits(r[u.ra]) == math.Float64frombits(r[u.rb])))
	case uCmpTLt:
		m.setF(isa.Reg(u.rc), fpBool(math.Float64frombits(r[u.ra]) < math.Float64frombits(r[u.rb])))
	case uCmpTLe:
		m.setF(isa.Reg(u.rc), fpBool(math.Float64frombits(r[u.ra]) <= math.Float64frombits(r[u.rb])))
	case uCvtQT:
		m.setF(isa.Reg(u.rc), float64(int64(r[u.ra])))
	case uCvtTQ:
		r[u.rc] = uint64(int64(math.Float64frombits(r[u.ra])))
	case uMove:
		r[u.rc] = r[u.ra]

	case uHalt:
		m.halted = true
		next = m.PC
	case uOut:
		v := r[u.ra]
		m.OutHash = m.OutHash*0x100000001b3 + v // FNV-style fold
		if len(m.OutValues) < maxRetainedOut {
			m.OutValues = append(m.OutValues, v)
		}

	default: // uGeneric: performs its own PC/seq bookkeeping
		return m.stepGeneric(c)
	}

	c.NextPC = next
	m.PC = next
	m.seq++
	return nil
}

// StepGeneric executes one instruction through the original switch-on-opcode
// interpreter, bypassing the predecoded dispatch. It exists for measurement:
// the microbench record (internal/bench) reports the predecoded and generic
// per-instruction costs side by side so the predecode gain stays visible in
// BENCH_pipeline.json. Semantics are identical to StepInto by construction —
// the predecode differential test pins every uop kind against this path.
func (m *Machine) StepGeneric(c *Committed) error { return m.stepGeneric(c) }

// stepGeneric is the original switch-on-opcode interpreter. The predecoded
// dispatch defers to it for the shapes the uop table does not model
// (misaligned direct control targets, undefined opcodes), and the predecode
// differential test uses it as the semantic oracle every uop kind is checked
// against.
func (m *Machine) stepGeneric(c *Committed) error {
	if m.halted {
		return &Fault{m.PC, "machine is halted"}
	}
	inst, ok := m.prog.InstAt(m.PC)
	if !ok {
		return &Fault{m.PC, "pc outside text segment"}
	}
	*c = Committed{Seq: m.seq, PC: m.PC, Inst: inst}
	next := m.PC + isa.PCStride

	opB := func() uint64 { // second integer operand: register or immediate
		if inst.UseImm {
			return uint64(inst.Imm)
		}
		return m.get(inst.Rb)
	}

	switch inst.Op {
	case isa.NOP:
	case isa.ADD:
		m.set(inst.Rc, m.get(inst.Ra)+opB())
	case isa.SUB:
		m.set(inst.Rc, m.get(inst.Ra)-opB())
	case isa.AND:
		m.set(inst.Rc, m.get(inst.Ra)&opB())
	case isa.OR:
		m.set(inst.Rc, m.get(inst.Ra)|opB())
	case isa.XOR:
		m.set(inst.Rc, m.get(inst.Ra)^opB())
	case isa.ANDNOT:
		m.set(inst.Rc, m.get(inst.Ra)&^opB())
	case isa.SLL:
		m.set(inst.Rc, m.get(inst.Ra)<<(opB()&63))
	case isa.SRL:
		m.set(inst.Rc, m.get(inst.Ra)>>(opB()&63))
	case isa.SRA:
		m.set(inst.Rc, uint64(int64(m.get(inst.Ra))>>(opB()&63)))
	case isa.CMPEQ:
		m.set(inst.Rc, boolQ(m.get(inst.Ra) == opB()))
	case isa.CMPLT:
		m.set(inst.Rc, boolQ(int64(m.get(inst.Ra)) < int64(opB())))
	case isa.CMPLE:
		m.set(inst.Rc, boolQ(int64(m.get(inst.Ra)) <= int64(opB())))
	case isa.CMPULT:
		m.set(inst.Rc, boolQ(m.get(inst.Ra) < opB()))
	case isa.CMPULE:
		m.set(inst.Rc, boolQ(m.get(inst.Ra) <= opB()))
	case isa.SEXTB:
		m.set(inst.Rc, uint64(int64(int8(m.get(inst.Ra)))))
	case isa.SEXTW:
		m.set(inst.Rc, uint64(int64(int16(m.get(inst.Ra)))))
	case isa.MOVI:
		m.set(inst.Rc, uint64(inst.Imm))
	case isa.MUL:
		m.set(inst.Rc, m.get(inst.Ra)*opB())
	case isa.DIV:
		d := int64(opB())
		if d == 0 {
			m.set(inst.Rc, 0) // architectural: divide by zero yields zero
		} else {
			m.set(inst.Rc, uint64(int64(m.get(inst.Ra))/d))
		}
	case isa.REM:
		d := int64(opB())
		if d == 0 {
			m.set(inst.Rc, 0)
		} else {
			m.set(inst.Rc, uint64(int64(m.get(inst.Ra))%d))
		}

	case isa.LDQ, isa.LDL, isa.LDW, isa.LDBU, isa.LDT:
		ea := m.get(inst.Ra) + uint64(inst.Imm)
		c.EA = ea
		switch inst.Op {
		case isa.LDQ, isa.LDT:
			c.Size = 8
			m.set(inst.Rc, m.Mem.Read(ea, 8))
		case isa.LDL:
			c.Size = 4
			m.set(inst.Rc, uint64(int64(int32(m.Mem.Read(ea, 4)))))
		case isa.LDW:
			c.Size = 2
			m.set(inst.Rc, m.Mem.Read(ea, 2))
		case isa.LDBU:
			c.Size = 1
			m.set(inst.Rc, m.Mem.Read(ea, 1))
		}
	case isa.STQ, isa.STL, isa.STW, isa.STB, isa.STT:
		ea := m.get(inst.Ra) + uint64(inst.Imm)
		c.EA = ea
		v := m.get(inst.Rb)
		switch inst.Op {
		case isa.STQ, isa.STT:
			c.Size = 8
			m.Mem.Write(ea, v, 8)
		case isa.STL:
			c.Size = 4
			m.Mem.Write(ea, v, 4)
		case isa.STW:
			c.Size = 2
			m.Mem.Write(ea, v, 2)
		case isa.STB:
			c.Size = 1
			m.Mem.Write(ea, v, 1)
		}

	case isa.BEQ, isa.BNE, isa.BLT, isa.BLE, isa.BGT, isa.BGE:
		v := int64(m.get(inst.Ra))
		var taken bool
		switch inst.Op {
		case isa.BEQ:
			taken = v == 0
		case isa.BNE:
			taken = v != 0
		case isa.BLT:
			taken = v < 0
		case isa.BLE:
			taken = v <= 0
		case isa.BGT:
			taken = v > 0
		case isa.BGE:
			taken = v >= 0
		}
		c.Taken = taken
		if taken {
			next = uint64(inst.Imm)
		}
	case isa.FBEQ, isa.FBNE:
		v := m.getF(inst.Ra)
		taken := v == 0
		if inst.Op == isa.FBNE {
			taken = !taken
		}
		c.Taken = taken
		if taken {
			next = uint64(inst.Imm)
		}
	case isa.BR:
		c.Taken = true
		m.set(inst.Rc, m.PC+isa.PCStride)
		next = uint64(inst.Imm)
	case isa.JSR:
		c.Taken = true
		target := m.get(inst.Rb)
		m.set(inst.Rc, m.PC+isa.PCStride)
		next = target
	case isa.JMP, isa.RET:
		c.Taken = true
		next = m.get(inst.Rb)

	case isa.ADDT:
		m.setF(inst.Rc, m.getF(inst.Ra)+m.getF(inst.Rb))
	case isa.SUBT:
		m.setF(inst.Rc, m.getF(inst.Ra)-m.getF(inst.Rb))
	case isa.MULT:
		m.setF(inst.Rc, m.getF(inst.Ra)*m.getF(inst.Rb))
	case isa.DIVT:
		m.setF(inst.Rc, m.getF(inst.Ra)/m.getF(inst.Rb))
	case isa.SQRTT:
		m.setF(inst.Rc, math.Sqrt(m.getF(inst.Ra)))
	case isa.CMPTEQ:
		m.setF(inst.Rc, fpBool(m.getF(inst.Ra) == m.getF(inst.Rb)))
	case isa.CMPTLT:
		m.setF(inst.Rc, fpBool(m.getF(inst.Ra) < m.getF(inst.Rb)))
	case isa.CMPTLE:
		m.setF(inst.Rc, fpBool(m.getF(inst.Ra) <= m.getF(inst.Rb)))
	case isa.CVTQT:
		m.setF(inst.Rc, float64(int64(m.get(inst.Ra))))
	case isa.CVTTQ:
		m.set(inst.Rc, uint64(int64(m.getF(inst.Ra))))
	case isa.ITOF:
		m.set(inst.Rc, m.get(inst.Ra)) // bit move into FP space
	case isa.FTOI:
		m.set(inst.Rc, m.get(inst.Ra)) // bit move out of FP space

	case isa.HALT:
		m.halted = true
		next = m.PC
	case isa.OUT:
		v := m.get(inst.Ra)
		m.OutHash = m.OutHash*0x100000001b3 + v // FNV-style fold
		if len(m.OutValues) < maxRetainedOut {
			m.OutValues = append(m.OutValues, v)
		}

	default:
		return &Fault{m.PC, fmt.Sprintf("unimplemented opcode %v", inst.Op)}
	}

	if next%isa.PCStride != 0 {
		return &Fault{m.PC, fmt.Sprintf("misaligned control target %#x", next)}
	}
	c.NextPC = next
	m.PC = next
	m.seq++
	return nil
}

// Run executes until HALT, a fault, or maxInsts committed instructions
// (0 = unlimited). It returns the number of instructions committed.
func (m *Machine) Run(maxInsts uint64) (uint64, error) {
	start := m.seq
	for !m.halted {
		if maxInsts != 0 && m.seq-start >= maxInsts {
			break
		}
		if _, err := m.Step(); err != nil {
			return m.seq - start, err
		}
	}
	return m.seq - start, nil
}

// LimitStream wraps a Stream with a hard instruction budget.
type LimitStream struct {
	S      Stream
	Budget uint64
	used   uint64

	// into caches the S.(StreamInto) assertion after the first NextInto so
	// the in-place path costs one nil check per record, not a type assertion.
	// Lazily derived because LimitStream is constructed as a plain literal.
	into      StreamInto
	intoKnown bool
}

// Next implements Stream.
func (l *LimitStream) Next() (Committed, bool) {
	if l.Budget != 0 && l.used >= l.Budget {
		return Committed{}, false
	}
	c, ok := l.S.Next()
	if ok {
		l.used++
	}
	return c, ok
}

// NextInto implements StreamInto, passing the in-place write through to the
// wrapped stream when it supports it.
func (l *LimitStream) NextInto(c *Committed) bool {
	if l.Budget != 0 && l.used >= l.Budget {
		return false
	}
	if !l.intoKnown {
		l.into, _ = l.S.(StreamInto)
		l.intoKnown = true
	}
	var ok bool
	if l.into != nil {
		ok = l.into.NextInto(c)
	} else {
		*c, ok = l.S.Next()
	}
	if ok {
		l.used++
	}
	return ok
}

// SliceStream replays a fixed slice of committed records; it is used heavily
// in pipeline unit tests.
type SliceStream struct {
	Recs []Committed
	pos  int
}

// Next implements Stream.
func (s *SliceStream) Next() (Committed, bool) {
	if s.pos >= len(s.Recs) {
		return Committed{}, false
	}
	c := s.Recs[s.pos]
	s.pos++
	return c, true
}

// NextInto implements StreamInto.
func (s *SliceStream) NextInto(c *Committed) bool {
	if s.pos >= len(s.Recs) {
		return false
	}
	*c = s.Recs[s.pos]
	s.pos++
	return true
}
