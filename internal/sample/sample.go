// Package sample implements region-parallel sampled simulation: a fast
// functional-only pass over the program drops architectural checkpoints at
// fixed instruction intervals, then a bounded worker pool simulates a
// detailed window from each checkpoint in parallel on the cycle model, and
// the per-region measurements merge into a whole-program estimate.
//
// The speed comes from two directions at once. Fast-forwarding runs the
// emulator alone — orders of magnitude cheaper per instruction than the
// cycle model — and the detailed windows, which dominate the remaining
// cost, are embarrassingly parallel because each starts from its own
// checkpoint. Each window begins with cold microarchitectural state
// (empty predictor, caches, and trace cache), so the estimate carries the
// usual cold-start bias of checkpoint sampling; shorter intervals and
// longer windows shrink it. The merged result is deterministic: region
// order is fixed by the schedule, not by worker completion order.
package sample

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"

	"ctcp/internal/emu"
	"ctcp/internal/isa"
	"ctcp/internal/pipeline"
	"ctcp/internal/snap"
)

// Options configures a sampled run.
type Options struct {
	// Interval is the spacing, in committed instructions, between region
	// starts. Required.
	Interval uint64
	// Detail is the number of instructions simulated in detail from each
	// region start (0 means the whole interval; values above Interval are
	// clamped to it). When Detail < Interval the measured cycles are scaled
	// up to cover the skipped remainder of the region.
	Detail uint64
	// Warmup is the number of instructions at the head of each detailed
	// window that only warm the cold microarchitectural state (caches,
	// predictor, trace cache): they are simulated in detail but excluded
	// from the cycle measurement the estimate scales up. Values that would
	// leave no measured instructions are clamped to half the window.
	// Region 0 is never warmed: its checkpoint is the program entry, where
	// cold microarchitectural state is exact, and measuring that region
	// cold is what lets the estimate reproduce the real run's one-time
	// warm-up ramp instead of averaging it away.
	Warmup uint64
	// Workers bounds the detailed-simulation pool (0 means GOMAXPROCS).
	Workers int
	// MaxInsts is the total instruction budget to cover. Required.
	MaxInsts uint64
	// OnRegion, when non-nil, is called once per completed detailed window
	// with the number of regions finished so far and the schedule total. It
	// fires from worker goroutines (concurrently, completion order) and must
	// be safe for concurrent use; the merged Result stays deterministic
	// regardless.
	OnRegion func(done, total int)
}

// Region is one detailed window's measurement.
type Region struct {
	Index      int
	StartInst  uint64 // committed instructions before the window
	SpanInsts  uint64 // instructions the region represents
	WarmInsts  uint64 // warmup instructions simulated but not measured
	WarmCycles int64
	Insts      uint64 // measured instructions simulated in detail
	Cycles     int64  // measured detailed-simulation cycles
	EstCycles  float64
}

// IPC returns the region's detailed instructions per cycle.
func (r Region) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// Result is the merged whole-program estimate.
type Result struct {
	Regions         []Region
	TotalInsts      uint64
	DetailedInsts   uint64
	DetailedCycles  int64
	EstimatedCycles float64
	// Stats sums every counter across the detailed windows; it covers only
	// the instructions simulated in detail.
	Stats pipeline.Stats
}

// IPC returns the sampled estimate of whole-program IPC.
func (res *Result) IPC() float64 {
	if res.EstimatedCycles == 0 {
		return 0
	}
	return float64(res.TotalInsts) / res.EstimatedCycles
}

// Run performs a sampled simulation of prog under cfg.
func Run(prog *isa.Program, cfg pipeline.Config, opts Options) (*Result, error) {
	if opts.Interval == 0 {
		return nil, fmt.Errorf("sample: Interval must be positive")
	}
	if opts.MaxInsts == 0 {
		return nil, fmt.Errorf("sample: MaxInsts must be positive")
	}
	detail := opts.Detail
	if detail == 0 || detail > opts.Interval {
		detail = opts.Interval
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg.MaxInsts = 0 // budgets are per-region LimitStreams, not global

	// Forward pass: the functional emulator alone, snapshotting the
	// architectural state at each region start.
	type regionStart struct {
		start uint64
		span  uint64
		ckpt  []byte
	}
	var starts []regionStart
	m := emu.New(prog)
	var executed uint64
	for executed < opts.MaxInsts {
		span := opts.Interval
		if rest := opts.MaxInsts - executed; rest < span {
			span = rest
		}
		w := snap.NewWriter()
		m.Snapshot(w)
		ckpt, err := w.Finish()
		if err != nil {
			return nil, fmt.Errorf("sample: checkpoint at inst %d: %w", executed, err)
		}
		starts = append(starts, regionStart{start: executed, span: span, ckpt: ckpt})
		var i uint64
		for i = 0; i < span; i++ {
			if _, ok := m.Next(); !ok {
				break
			}
		}
		if i == 0 {
			// The program halted exactly at the boundary: the checkpoint
			// stands for nothing.
			starts = starts[:len(starts)-1]
			break
		}
		executed += i
		if i < span {
			starts[len(starts)-1].span = i
			break
		}
	}
	total := executed

	// Detailed windows in parallel. Results land in a slot per region, so
	// the merge below is independent of completion order.
	regions := make([]Region, len(starts))
	stats := make([]*pipeline.Stats, len(starts))
	errs := make([]error, len(starts))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var completed atomic.Int64
	if workers > len(starts) {
		workers = len(starts)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				det, warm := detail, opts.Warmup
				if idx == 0 {
					// The entry region is special: its cold state is the
					// true initial state, and the warm-up ramp it measures
					// is nonlinear, so it is simulated whole — no warmup to
					// discard, no scaling to extrapolate the ramp.
					det, warm = starts[idx].span, 0
				}
				regions[idx], stats[idx], errs[idx] = runRegion(prog, cfg, starts[idx].ckpt, starts[idx].start, starts[idx].span, det, warm)
				regions[idx].Index = idx
				if opts.OnRegion != nil {
					opts.OnRegion(int(completed.Add(1)), len(starts))
				}
			}
		}()
	}
	for idx := range starts {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	res := &Result{Regions: regions, TotalInsts: total}
	for idx := range regions {
		if errs[idx] != nil {
			return nil, fmt.Errorf("sample: region %d (inst %d): %w", idx, starts[idx].start, errs[idx])
		}
		res.DetailedInsts += regions[idx].WarmInsts + regions[idx].Insts
		res.DetailedCycles += regions[idx].WarmCycles + regions[idx].Cycles
		res.EstimatedCycles += regions[idx].EstCycles
		addStats(&res.Stats, stats[idx])
	}
	return res, nil
}

// runRegion restores one architectural checkpoint into a fresh emulator and
// simulates up to detail instructions on a cold cycle model, optionally
// excluding a warmup prefix from the measurement.
func runRegion(prog *isa.Program, cfg pipeline.Config, ckpt []byte, start, span, detail, warm uint64) (Region, *pipeline.Stats, error) {
	reg := Region{StartInst: start, SpanInsts: span}
	m := emu.New(prog)
	r, err := snap.NewReader(ckpt)
	if err != nil {
		return reg, nil, err
	}
	m.Restore(r)
	if err := r.Close(); err != nil {
		return reg, nil, err
	}
	budget := detail
	if budget > span {
		budget = span
	}
	if warm >= budget {
		warm = budget / 2
	}
	cfg.RetireHook = nil // per-region pipelines must not feed shared observers
	p := pipeline.New(&emu.LimitStream{S: m, Budget: budget}, cfg)
	if warm > 0 {
		p.RunTo(warm)
		reg.WarmCycles = p.CurrentCycle()
		reg.WarmInsts = p.Retired()
	}
	p.RunTo(0)
	s := p.Finish()
	reg.Insts = s.Retired - reg.WarmInsts
	reg.Cycles = s.Cycles - reg.WarmCycles
	if reg.Insts > 0 {
		// Scale the measured window's rate over the instructions the region
		// stands for.
		reg.EstCycles = float64(reg.Cycles) * float64(span) / float64(reg.Insts)
	}
	return reg, s, nil
}

// addStats accumulates src into dst field by field via reflection: integer
// counters add, nested structs recurse, and everything else (the PipeTrace
// debug slice) is skipped. Reflection keeps the merge complete by
// construction as Stats grows new counters.
func addStats(dst, src *pipeline.Stats) {
	addValue(reflect.ValueOf(dst).Elem(), reflect.ValueOf(src).Elem())
}

func addValue(dst, src reflect.Value) {
	switch dst.Kind() {
	case reflect.Struct:
		for i := 0; i < dst.NumField(); i++ {
			addValue(dst.Field(i), src.Field(i))
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		dst.SetUint(dst.Uint() + src.Uint())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		dst.SetInt(dst.Int() + src.Int())
	}
}
