package lint

// Lint-suite cost tracking: the whole point of a pre-merge analyzer suite is
// that it stays cheap enough to run on every push. BenchmarkLintModule
// measures one full load + registry run over the module; TestLintModuleBudget
// is the CI tripwire that fails when the suite (including the flow-sensitive
// lockheld/lockorder/goroleak fixpoints) outgrows a generous wall-clock
// budget instead of letting it creep.

import (
	"os"
	"strconv"
	"testing"
	"time"
)

// loadModulePkgs loads and type-checks the whole module once, fatally on
// error; shared by the benchmark and the budget test.
func loadModulePkgs(tb testing.TB) []*Package {
	tb.Helper()
	l, err := NewLoader("")
	if err != nil {
		tb.Fatal(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		tb.Fatal(err)
	}
	return pkgs
}

// BenchmarkLintModule times the analysis proper — every registered analyzer
// plus the suppression audit — over a pre-loaded module, which is what the
// suite costs when the type-checked packages are already in hand (load and
// type-check time is measured once by the loader, not per analyzer change).
func BenchmarkLintModule(b *testing.B) {
	pkgs := loadModulePkgs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags := Run(pkgs, All())
		diags = append(diags, Audit(pkgs, All())...)
		if len(diags) != 0 {
			b.Fatalf("module not clean: %s", diags[0].String())
		}
	}
}

// lintBudget is the end-to-end ceiling (load + type-check + every analyzer +
// audit) for one cold run of the suite, overridable for slow CI runners via
// CTCP_LINT_BUDGET (seconds).
const lintBudget = 120 * time.Second

// TestLintModuleBudget fails when a cold ctcplint run outgrows lintBudget.
// Analyzer additions that regress this should be made cheaper (share the
// call graph, prune the fixpoint) rather than the budget raised quietly.
func TestLintModuleBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module (plus stdlib sources)")
	}
	if raceEnabled {
		t.Skip("wall-clock budget is meaningless under race instrumentation")
	}
	budget := lintBudget
	if s := os.Getenv("CTCP_LINT_BUDGET"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("CTCP_LINT_BUDGET: %v", err)
		}
		budget = time.Duration(secs) * time.Second
	}
	start := time.Now()
	pkgs := loadModulePkgs(t)
	diags := Run(pkgs, All())
	diags = append(diags, Audit(pkgs, All())...)
	elapsed := time.Since(start)
	for _, d := range diags {
		t.Errorf("%s", d.String())
	}
	if elapsed > budget {
		t.Fatalf("full lint run took %v, over the %v budget; make the analyzers cheaper before raising it", elapsed, budget)
	}
	t.Logf("full lint run: %v (budget %v)", elapsed, budget)
}
