package isa

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Default segment bases. Text is low, data sits above it, and the stack grows
// down from StackTop. Nothing in the simulator depends on these exact values;
// they are conventions shared by the assembler, builder, and emulator.
const (
	DefaultTextBase uint64 = 0x0000_1000
	DefaultDataBase uint64 = 0x0010_0000
	DefaultHeapBase uint64 = 0x0100_0000
	StackTop        uint64 = 0x7FFF_F000
)

// Program is a loadable TRISC-64 image: a text segment of decoded
// instructions, an initialized data segment, an entry point, and an optional
// symbol table for diagnostics.
type Program struct {
	TextBase uint64
	Text     []Inst
	DataBase uint64
	Data     []byte
	Entry    uint64
	Symbols  map[string]uint64
}

// InstAt returns the instruction at address pc, or ok=false if pc lies
// outside the text segment or is misaligned.
func (p *Program) InstAt(pc uint64) (Inst, bool) {
	if pc < p.TextBase || (pc-p.TextBase)%PCStride != 0 {
		return Inst{}, false
	}
	idx := (pc - p.TextBase) / PCStride
	if idx >= uint64(len(p.Text)) {
		return Inst{}, false
	}
	return p.Text[idx], true
}

// TextEnd returns the first address past the text segment.
func (p *Program) TextEnd() uint64 {
	return p.TextBase + uint64(len(p.Text))*PCStride
}

// SymbolFor returns the name of the symbol at addr, if any.
func (p *Program) SymbolFor(addr uint64) (string, bool) {
	for name, a := range p.Symbols {
		if a == addr {
			return name, true
		}
	}
	return "", false
}

// SortedSymbols returns symbol names ordered by address (then name), which
// keeps disassembly listings deterministic.
func (p *Program) SortedSymbols() []string {
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		ai, aj := p.Symbols[names[i]], p.Symbols[names[j]]
		if ai != aj {
			return ai < aj
		}
		return names[i] < names[j]
	})
	return names
}

// Object file format: a fixed little-endian header followed by text words and
// raw data bytes. Symbols are not serialized; they are a build-time aid.
const objMagic uint64 = 0x545249534336344F // "TRISC64O" truncated into 8 bytes

type objHeader struct {
	Magic    uint64
	Entry    uint64
	TextBase uint64
	TextLen  uint64
	DataBase uint64
	DataLen  uint64
}

// Save serializes the program to w in the TRISC-64 object format.
func (p *Program) Save(w io.Writer) error {
	h := objHeader{
		Magic:    objMagic,
		Entry:    p.Entry,
		TextBase: p.TextBase,
		TextLen:  uint64(len(p.Text)),
		DataBase: p.DataBase,
		DataLen:  uint64(len(p.Data)),
	}
	if err := binary.Write(w, binary.LittleEndian, h); err != nil {
		return fmt.Errorf("isa: writing object header: %w", err)
	}
	words := make([]uint64, len(p.Text))
	for i, inst := range p.Text {
		words[i] = inst.Encode()
	}
	if err := binary.Write(w, binary.LittleEndian, words); err != nil {
		return fmt.Errorf("isa: writing text: %w", err)
	}
	if _, err := w.Write(p.Data); err != nil {
		return fmt.Errorf("isa: writing data: %w", err)
	}
	return nil
}

// LoadProgram deserializes a program written by Save.
func LoadProgram(r io.Reader) (*Program, error) {
	var h objHeader
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return nil, fmt.Errorf("isa: reading object header: %w", err)
	}
	if h.Magic != objMagic {
		return nil, fmt.Errorf("isa: bad object magic %#x", h.Magic)
	}
	const maxSeg = 1 << 28
	if h.TextLen > maxSeg || h.DataLen > maxSeg {
		return nil, fmt.Errorf("isa: unreasonable segment size (text=%d data=%d)", h.TextLen, h.DataLen)
	}
	words := make([]uint64, h.TextLen)
	if err := binary.Read(r, binary.LittleEndian, &words); err != nil {
		return nil, fmt.Errorf("isa: reading text: %w", err)
	}
	p := &Program{
		TextBase: h.TextBase,
		DataBase: h.DataBase,
		Entry:    h.Entry,
		Text:     make([]Inst, h.TextLen),
		Data:     make([]byte, h.DataLen),
	}
	for i, w := range words {
		inst, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("isa: text word %d: %w", i, err)
		}
		p.Text[i] = inst
	}
	if _, err := io.ReadFull(r, p.Data); err != nil {
		return nil, fmt.Errorf("isa: reading data: %w", err)
	}
	return p, nil
}
