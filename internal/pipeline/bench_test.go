package pipeline

// Microbenchmarks for the cycle-model hot path. Every paper artifact is a
// full-matrix sweep over this loop, so ns/cycle and allocs/op here bound the
// wall-clock of the whole experiment harness. BenchmarkCycle times the inner
// p.cycle() step in isolation; BenchmarkRunProgram measures end-to-end
// simulation throughput per kernel and reports ns/cycle and sim-cycles/sec.
//
// `make bench` runs these and records the numbers (plus the pre-optimization
// baseline) in BENCH_pipeline.json.

import (
	"testing"

	"ctcp/internal/core"
	"ctcp/internal/emu"
	"ctcp/internal/workload"
)

const benchInsts = 30_000

// benchKernels are the kernels `make bench` tracks: two pointer/branch-heavy
// integer codes, one cache-hostile pointer chaser, and one FP kernel.
var benchKernels = []string{"gzip", "mcf", "eon", "perlbmk"}

func BenchmarkCycle(b *testing.B) {
	bm, ok := workload.ByName("gzip")
	if !ok {
		b.Fatal("gzip kernel missing")
	}
	prog := bm.ProgramFor(200_000)
	cfg := DefaultConfig().WithStrategy(core.FDRT, false)
	p := New(emu.New(prog), cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.done() {
			b.StopTimer()
			p = New(emu.New(prog), cfg)
			b.StartTimer()
		}
		if p.cycle() {
			p.now++
		} else {
			p.now = p.nextEvent()
		}
	}
}

func BenchmarkRunProgram(b *testing.B) {
	for _, name := range benchKernels {
		bm, ok := workload.ByName(name)
		if !ok {
			b.Fatalf("%s kernel missing", name)
		}
		prog := bm.ProgramFor(benchInsts)
		cfg := DefaultConfig().WithStrategy(core.FDRT, false)
		cfg.MaxInsts = benchInsts
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var cycles int64
			for i := 0; i < b.N; i++ {
				cycles += RunProgram(prog, cfg).Cycles
			}
			if cycles == 0 {
				b.Fatal("simulation made no progress")
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}
