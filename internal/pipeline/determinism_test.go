package pipeline

// Determinism: the cycle model must produce byte-identical statistics for
// identical (program, config) inputs. The rewrite of the hot path replaced
// map-based bookkeeping with dense arrays; any surviving dependence on map
// iteration order (or on shared mutable state between concurrent runs)
// breaks this test. The two runs execute concurrently so `go test -race`
// also checks that independent pipelines share nothing mutable.

import (
	"reflect"
	"sync"
	"testing"

	"ctcp/internal/core"
	"ctcp/internal/workload"
)

func TestDeterministicStatsAllStrategies(t *testing.T) {
	bm, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip kernel missing")
	}
	prog := bm.ProgramFor(20_000)
	for _, k := range []core.StrategyKind{core.Base, core.IssueTime, core.Friendly, core.FDRT} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig().WithStrategy(k, false)
			cfg.MaxInsts = 20_000
			results := make([]*Stats, 2)
			var wg sync.WaitGroup
			for i := range results {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i] = RunProgram(prog, cfg)
				}(i)
			}
			wg.Wait()
			if !reflect.DeepEqual(results[0], results[1]) {
				t.Fatalf("two identical runs diverged:\n run0 %+v\n run1 %+v", results[0], results[1])
			}
		})
	}
}
