package bench

import (
	"encoding/json"
	"testing"
)

func TestRunProducesMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness run")
	}
	rep, err := Run(2_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Kernels {
		m, ok := rep.Kernels[k]
		if !ok {
			t.Fatalf("kernel %s missing from report", k)
		}
		if m.Iterations <= 0 || m.NsPerOp <= 0 || m.NsPerCycle <= 0 || m.CyclesPerSec <= 0 {
			t.Errorf("%s: degenerate metrics %+v", k, m)
		}
	}
}

func TestBaselineRoundtrips(t *testing.T) {
	base := Baseline()
	for _, k := range Kernels {
		if _, ok := base.Kernels[k]; !ok {
			t.Fatalf("baseline missing kernel %s", k)
		}
	}
	buf, err := json.Marshal(File{Baseline: base, Current: base})
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		t.Fatal(err)
	}
	if f.Baseline.Kernels["gzip"].AllocsPerOp != base.Kernels["gzip"].AllocsPerOp {
		t.Fatal("baseline did not roundtrip through JSON")
	}
}
