package serve

// Slot endpoint tests: list/inspect/fork over HTTP against a slot directory
// populated the way ctcpsim populates it, plus the failure surface (no slot
// directory, invalid fork deltas leaving no destination behind).

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"ctcp/internal/emu"
	"ctcp/internal/experiment"
	"ctcp/internal/pipeline"
	"ctcp/internal/workload"
)

// seedSlot saves one mid-flight slot into dir, as ctcpsim -save-slot would.
func seedSlot(t *testing.T, dir, name, bench, base string, budget, at uint64) experiment.SlotMeta {
	t.Helper()
	st, err := experiment.OpenSlots(dir)
	if err != nil {
		t.Fatal(err)
	}
	sc := experiment.SlotConfig{Base: base}
	cfg, err := sc.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	bm, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %q", bench)
	}
	cfg.MaxInsts = 0
	m := emu.New(bm.ProgramFor(budget))
	p := pipeline.New(&emu.LimitStream{S: m, Budget: budget}, cfg)
	if p.RunTo(at) {
		t.Fatalf("stream exhausted before the save point %d", at)
	}
	meta, err := st.Save(experiment.SlotMeta{Name: name, Benchmark: bench, Config: sc, Budget: budget}, p)
	if err != nil {
		t.Fatal(err)
	}
	return meta
}

func postFork(t *testing.T, base, slot string, fr forkRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(fr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/api/v1/slots/"+slot+"/fork", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST fork: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck // best-effort diagnostic body
	return resp, buf.Bytes()
}

func TestSlotEndpoints(t *testing.T) {
	slotDir := t.TempDir()
	saved := seedSlot(t, slotDir, "warm", "gzip", "fdrt", testBudget, testBudget/2)
	_, hs := newTestServer(t, Config{SlotDir: slotDir})

	// List: the seeded slot appears with complete metadata.
	resp, err := http.Get(hs.URL + "/api/v1/slots")
	if err != nil {
		t.Fatal(err)
	}
	var slots []experiment.SlotMeta
	if err := json.NewDecoder(resp.Body).Decode(&slots); err != nil {
		t.Fatalf("decode list (status %d): %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	if len(slots) != 1 || slots[0].Name != "warm" || slots[0].RunFP != saved.RunFP {
		t.Fatalf("list: %+v (saved %+v)", slots, saved)
	}

	// Inspect: one slot's metadata round-trips.
	resp, err = http.Get(hs.URL + "/api/v1/slots/warm")
	if err != nil {
		t.Fatal(err)
	}
	var meta experiment.SlotMeta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if meta.Consumed != testBudget/2 || meta.CfgFP != saved.CfgFP {
		t.Fatalf("inspect: %+v", meta)
	}
	if resp, _ := http.Get(hs.URL + "/api/v1/slots/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("inspect of a missing slot: status %d", resp.StatusCode)
	}

	// Fork: a hop-latency what-if creates a re-fingerprinted child slot.
	fresp, body := postFork(t, hs.URL, "warm", forkRequest{As: "warm-hop1", Hop: 1})
	if fresp.StatusCode != http.StatusCreated {
		t.Fatalf("fork: status %d: %s", fresp.StatusCode, body)
	}
	var fork experiment.SlotMeta
	if err := json.Unmarshal(body, &fork); err != nil {
		t.Fatal(err)
	}
	if fork.Parent != "warm" || fork.Config.Base != "fdrt" || fork.Config.Hop != 1 {
		t.Fatalf("fork metadata: %+v", fork)
	}
	if fork.RunFP == saved.RunFP || fork.CfgFP == saved.CfgFP {
		t.Fatalf("fork kept the parent fingerprints: %+v", fork)
	}

	// The forked slot restores and continues on the server's directory.
	st, err := experiment.OpenSlots(slotDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, p, err := st.Restore("warm-hop1"); err != nil {
		t.Fatalf("restoring the HTTP-forked slot: %v", err)
	} else {
		p.RunTo(0)
		if s := p.Finish(); s.Retired != testBudget {
			t.Fatalf("forked continuation retired %d, want %d", s.Retired, testBudget)
		}
	}
}

func TestSlotForkRejections(t *testing.T) {
	slotDir := t.TempDir()
	seedSlot(t, slotDir, "seed", "gzip", "fdrt", testBudget, testBudget/2)
	_, hs := newTestServer(t, Config{SlotDir: slotDir})

	cases := []struct {
		name string
		fr   forkRequest
		want int
	}{
		{"missing-destination", forkRequest{}, http.StatusBadRequest},
		{"strategy-change", forkRequest{As: "bad1", Base: "issue4"}, http.StatusBadRequest},
		{"inconsistent-knobs", forkRequest{As: "bad2", Base: "fdrt", ZeroAllFwd: true, ZeroCritFwd: true}, http.StatusBadRequest},
		{"unknown-base", forkRequest{As: "bad3", Base: "warp-speed"}, http.StatusBadRequest},
		{"bad-name", forkRequest{As: "../escape"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postFork(t, hs.URL, "seed", tc.fr)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
		if tc.fr.As == "" {
			continue
		}
		if resp, _ := http.Get(hs.URL + "/api/v1/slots/" + tc.fr.As); resp.StatusCode == http.StatusOK {
			t.Errorf("%s: failed fork left destination slot %q behind", tc.name, tc.fr.As)
		}
	}

	// Forking an unknown source is a 404.
	if resp, _ := postFork(t, hs.URL, "ghost", forkRequest{As: "x"}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("fork of a missing slot: status %d", resp.StatusCode)
	}
}

// TestSlotsDisabled: a server without a slot directory reports the
// misconfiguration on every slot endpoint instead of inventing one.
func TestSlotsDisabled(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for _, url := range []string{"/api/v1/slots", "/api/v1/slots/x"} {
		resp, err := http.Get(hs.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without a slot dir: status %d", url, resp.StatusCode)
		}
	}
	if resp, _ := postFork(t, hs.URL, "x", forkRequest{As: "y"}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("fork without a slot dir: status %d", resp.StatusCode)
	}
}

// TestSlotForkConcurrentHTTP: two racing fork requests for one destination
// must resolve to exactly one 201 Created. The loser is refused with 400 —
// by the in-flight reservation or, if it arrives after the winner finished,
// by the destination-exists check — and the winner's slot is served back
// intact. This is the HTTP-level regression for moving fork serialization
// out of a handler mutex (which held disk I/O under a lock) and into the
// slot store's per-destination reservation.
func TestSlotForkConcurrentHTTP(t *testing.T) {
	slotDir := t.TempDir()
	seedSlot(t, slotDir, "warm", "gzip", "fdrt", testBudget, testBudget/2)
	_, hs := newTestServer(t, Config{SlotDir: slotDir})

	body, err := json.Marshal(forkRequest{As: "race-dst", Hop: 2})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		code int
		body string
		err  error
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(hs.URL+"/api/v1/slots/warm/fork", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- result{err: err}
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body) //nolint:errcheck // best-effort diagnostic body
			results <- result{code: resp.StatusCode, body: buf.String()}
		}()
	}
	var created, refused int
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("POST fork: %v", r.err)
		}
		switch r.code {
		case http.StatusCreated:
			created++
		case http.StatusBadRequest:
			refused++
		default:
			t.Errorf("unexpected fork status %d: %s", r.code, r.body)
		}
	}
	if created != 1 || refused != 1 {
		t.Fatalf("racing forks: %d created, %d refused; want exactly 1 and 1", created, refused)
	}

	// The winner's slot is real: inspectable with fork lineage.
	resp, err := http.Get(hs.URL + "/api/v1/slots/race-dst")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var meta experiment.SlotMeta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatalf("decode forked slot (status %d): %v", resp.StatusCode, err)
	}
	if meta.Parent != "warm" || meta.Config.Hop != 2 {
		t.Fatalf("forked slot metadata: %+v", meta)
	}
}
