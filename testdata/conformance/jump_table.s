; conformance: register-indirect dispatch through a jump table held in .data.
        .entry main
main:   movi    r10, tbl
        movi    r1, 0           ; case index
        movi    r2, 1           ; accumulator
disp:   sll     r1, 3, r3
        add     r10, r3, r3
        ldq     r4, 0(r3)
        jmp     (r4)
case0:  add     r2, 100, r2
        br      nextc
case1:  add     r2, 200, r2
        br      nextc
case2:  mul     r2, 3, r2
        br      nextc
nextc:  add     r1, 1, r1
        cmplt   r1, 3, r5
        bne     r5, disp
        out     r2
        halt
        .data
tbl:    .quad   case0, case1, case2
