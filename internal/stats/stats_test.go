package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHarmonicMeanBasics(t *testing.T) {
	if hm := HarmonicMean([]float64{1, 1, 1}); hm != 1 {
		t.Errorf("HM(1,1,1) = %v", hm)
	}
	if hm := HarmonicMean([]float64{2, 2}); hm != 2 {
		t.Errorf("HM(2,2) = %v", hm)
	}
	// Classic: HM(1,2) = 4/3.
	if hm := HarmonicMean([]float64{1, 2}); math.Abs(hm-4.0/3) > 1e-12 {
		t.Errorf("HM(1,2) = %v", hm)
	}
	if HarmonicMean(nil) != 0 {
		t.Error("HM(nil) != 0")
	}
	if HarmonicMean([]float64{1, 0}) != 0 {
		t.Error("HM with zero entry should flag as 0")
	}
	if HarmonicMean([]float64{1, -2}) != 0 {
		t.Error("HM with negative entry should flag as 0")
	}
}

// Property: the harmonic mean never exceeds the arithmetic mean and lies
// within [min, max] for positive inputs.
func TestHarmonicMeanBoundsQuick(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			x = math.Abs(x)
			if x > 1e-6 && x < 1e6 && !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		hm, am := HarmonicMean(xs), Mean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		const eps = 1e-9
		return hm <= am*(1+eps) && hm >= lo*(1-eps) && hm <= hi*(1+eps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("mean(nil) != 0")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.6161) != "61.61%" {
		t.Errorf("Pct = %q", Pct(0.6161))
	}
	if F2(1.234) != "1.23" || F3(1.2345) != "1.234" {
		t.Error("float formatters wrong")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"name", "value"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("alpha", "1.00")
	tab.AddRow("b", "12345.00")
	out := tab.Render()
	for _, want := range []string{"T\n=", "name", "alpha", "12345.00", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	// Columns align: every data line has the header's separator offset.
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatal("too few lines")
	}
	// Right-aligned numeric column: the shorter value ends at the same
	// column as the longer one.
	var alphaLine, bLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "alpha") {
			alphaLine = l
		}
		if strings.HasPrefix(l, "b ") {
			bLine = l
		}
	}
	if len(alphaLine) != len(bLine) {
		t.Errorf("misaligned rows:\n%q\n%q", alphaLine, bLine)
	}
	// The separator is exactly as wide as the widest data line: column
	// widths plus one 2-space gap per adjacent pair, with no gap charged
	// before column 0.
	var sep string
	for _, l := range lines {
		if strings.HasPrefix(l, "-") {
			sep = l
		}
	}
	if len(sep) != len(bLine) {
		t.Errorf("separator width %d, want %d (line %q vs %q)", len(sep), len(bLine), sep, bLine)
	}
}

func TestTableRenderNoTitle(t *testing.T) {
	tab := &Table{Header: []string{"x"}}
	tab.AddRow("1")
	if strings.HasPrefix(tab.Render(), "\n=") {
		t.Error("empty title rendered separator")
	}
}
