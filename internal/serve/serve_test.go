package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ctcp/internal/experiment"
	"ctcp/internal/pipeline"
	"ctcp/internal/workload"
)

const (
	testBudget uint64 = 20_000
	testEvery  uint64 = 5_000
)

// newTestServer starts a Server over fresh (or given) directories and an
// httptest front end, and tears both down at test end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == "" {
		cfg.Store = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s, hs
}

// submit POSTs a job request and decodes the response body as T.
func submit[T any](t *testing.T, base string, req Request) (T, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /api/v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response (status %d): %v", resp.StatusCode, err)
	}
	return out, resp.StatusCode
}

// waitJob long-polls a job until it reaches a terminal status.
func waitJob(t *testing.T, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/api/v1/jobs/" + id + "?wait=5s")
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		var v jobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode job: %v", err)
		}
		switch v.Status {
		case StatusDone, StatusFailed, StatusInterrupted:
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in status %q", id, v.Status)
		}
	}
}

// metricValue fetches /metrics and returns the value of one sample line.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	for _, line := range strings.Split(body.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s has non-numeric value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body.String())
	return 0
}

// statsJSON canonicalizes a job's stats for bit-identity comparison.
func statsJSON(t *testing.T, v jobView) string {
	t.Helper()
	if v.Stats == nil {
		t.Fatalf("job %s has no stats (status %q, error %q)", v.ID, v.Status, v.Error)
	}
	buf, err := json.Marshal(v.Stats)
	if err != nil {
		t.Fatalf("marshal stats: %v", err)
	}
	return string(buf)
}

// TestServeExactlyOnce is the headline dedup property: many concurrent
// submissions of one fingerprint cost exactly one simulation, observable
// from the outside via /metrics.
func TestServeExactlyOnce(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 4})
	req := Request{Benchmark: "gzip", Config: "base", Budget: testBudget}

	const callers = 8
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted int
		ids      = map[string]bool{}
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, code := submit[jobView](t, hs.URL, req)
			mu.Lock()
			defer mu.Unlock()
			switch code {
			case http.StatusAccepted:
				accepted++
			case http.StatusOK:
			default:
				t.Errorf("unexpected status %d", code)
			}
			ids[v.ID] = true
		}()
	}
	wg.Wait()
	if accepted != 1 {
		t.Errorf("got %d accepted (202) submissions, want exactly 1", accepted)
	}
	if len(ids) != 1 {
		t.Errorf("concurrent duplicate submissions produced %d jobs, want 1: %v", len(ids), ids)
	}
	var id string
	for k := range ids {
		id = k
	}
	v := waitJob(t, hs.URL, id)
	if v.Status != StatusDone {
		t.Fatalf("job status %q, error %q", v.Status, v.Error)
	}
	if v.Stats.Retired != testBudget {
		t.Errorf("retired %d, want %d", v.Stats.Retired, testBudget)
	}
	if got := metricValue(t, hs.URL, "ctcpd_runner_started_total"); got != 1 {
		t.Errorf("ctcpd_runner_started_total = %v, want 1", got)
	}
	if got := metricValue(t, hs.URL, "ctcpd_store_writes_total"); got != 1 {
		t.Errorf("ctcpd_store_writes_total = %v, want 1", got)
	}

	// A late submission of the same job is answered by the completed job.
	v2, code := submit[jobView](t, hs.URL, req)
	if code != http.StatusOK || v2.ID != id {
		t.Errorf("resubmit: status %d job %s, want 200 for %s", code, v2.ID, id)
	}
	if got := metricValue(t, hs.URL, "ctcpd_runner_started_total"); got != 1 {
		t.Errorf("after resubmit, ctcpd_runner_started_total = %v, want 1", got)
	}

	// The result is also addressable directly by fingerprint.
	resp, err := http.Get(hs.URL + "/api/v1/results/" + v.Fingerprint)
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result status %d", resp.StatusCode)
	}
	var rec Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatalf("decode record: %v", err)
	}
	if rec.Fingerprint != v.Fingerprint || rec.Benchmark != "gzip" || rec.Budget != testBudget {
		t.Errorf("record mismatch: %+v", rec)
	}
}

// TestServeRestartServesFromStore proves the store survives the process: a
// fresh Server over the same directory answers a repeated request without
// simulating, bit-identically to the original run.
func TestServeRestartServesFromStore(t *testing.T) {
	storeDir := t.TempDir()
	req := Request{Benchmark: "gzip", Config: "fdrt", Budget: testBudget}

	s1, err := New(Config{Store: storeDir, Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs1 := httptest.NewServer(s1)
	v1, code := submit[jobView](t, hs1.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	v1 = waitJob(t, hs1.URL, v1.ID)
	if v1.Status != StatusDone {
		t.Fatalf("first run: status %q error %q", v1.Status, v1.Error)
	}
	want := statsJSON(t, v1)
	hs1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// "Restart": a brand-new process image over the same store.
	_, hs2 := newTestServer(t, Config{Store: storeDir, Workers: 2})
	v2, code := submit[jobView](t, hs2.URL, req)
	if code != http.StatusOK {
		t.Fatalf("post-restart submit: status %d, want 200 (store hit)", code)
	}
	if !v2.Cached || v2.Status != StatusDone {
		t.Fatalf("post-restart job not served from store: cached=%v status=%q", v2.Cached, v2.Status)
	}
	if got := statsJSON(t, v2); got != want {
		t.Errorf("restart result is not bit-identical:\n got %s\nwant %s", got, want)
	}
	if got := metricValue(t, hs2.URL, "ctcpd_runner_started_total"); got != 0 {
		t.Errorf("restarted server simulated anyway: ctcpd_runner_started_total = %v", got)
	}
	if got := metricValue(t, hs2.URL, "ctcpd_store_hits_total"); got != 1 {
		t.Errorf("ctcpd_store_hits_total = %v, want 1", got)
	}
}

// TestServeBudgetChangeResimulates: a changed budget is a different
// fingerprint, so the stale result must not be served.
func TestServeBudgetChangeResimulates(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	v1, code := submit[jobView](t, hs.URL, Request{Benchmark: "gzip", Config: "base", Budget: testBudget})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	v1 = waitJob(t, hs.URL, v1.ID)
	if v1.Status != StatusDone || v1.Stats.Retired != testBudget {
		t.Fatalf("first run: %+v", v1)
	}

	v2, code := submit[jobView](t, hs.URL, Request{Benchmark: "gzip", Config: "base", Budget: 2 * testBudget})
	if code != http.StatusAccepted {
		t.Fatalf("changed-budget submit: status %d, want 202 (fresh simulation)", code)
	}
	if v2.Fingerprint == v1.Fingerprint {
		t.Fatalf("budget change did not change the fingerprint %s", v1.Fingerprint)
	}
	v2 = waitJob(t, hs.URL, v2.ID)
	if v2.Status != StatusDone {
		t.Fatalf("second run: status %q error %q", v2.Status, v2.Error)
	}
	if v2.Stats.Retired != 2*testBudget {
		t.Errorf("changed-budget run retired %d, want %d — served a stale result", v2.Stats.Retired, 2*testBudget)
	}
	if got := metricValue(t, hs.URL, "ctcpd_runner_started_total"); got != 2 {
		t.Errorf("ctcpd_runner_started_total = %v, want 2", got)
	}
}

// TestServeCheckpointRestartMatchesDirect: a checkpointed job submitted to a
// server that is immediately shut down can be completed by a successor
// server over the same directories, and the result matches an uninterrupted
// direct runner execution bit-for-bit — regardless of how far the first
// server got.
func TestServeCheckpointRestartMatchesDirect(t *testing.T) {
	storeDir, ckptDir := t.TempDir(), t.TempDir()
	req := Request{Benchmark: "gzip", Config: "base", Budget: testBudget,
		Checkpoint: true, CheckpointEvery: testEvery}

	// Reference: the same run executed directly, uninterrupted.
	refRunner := experiment.NewRunner(experiment.Options{
		Budget: testBudget, CheckpointDir: t.TempDir(), CheckpointEvery: testEvery,
	})
	bm, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip benchmark missing")
	}
	refStats, err := refRunner.RunErr(bm, "base", experiment.StrategyConfigs()["base"])
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want, err := json.Marshal(refStats)
	if err != nil {
		t.Fatal(err)
	}

	s1, err := New(Config{Store: storeDir, CheckpointDir: ckptDir, Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs1 := httptest.NewServer(s1)
	if _, code := submit[jobView](t, hs1.URL, req); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	// Shut down immediately: the job is either still queued (resolved as
	// interrupted by the drain), interrupted between segments (newest
	// checkpoint on disk), or already done (journal + store record on disk).
	// All three must converge to the same bits on the successor.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	hs1.Close()

	_, hs2 := newTestServer(t, Config{Store: storeDir, CheckpointDir: ckptDir, Workers: 1})
	v, _ := submit[jobView](t, hs2.URL, req)
	v = waitJob(t, hs2.URL, v.ID)
	if v.Status != StatusDone {
		t.Fatalf("successor run: status %q error %q", v.Status, v.Error)
	}
	if got := statsJSON(t, v); got != string(want) {
		t.Errorf("resumed result differs from uninterrupted run:\n got %s\nwant %s", got, want)
	}
}

// waitRunning polls a job until it leaves the queue.
func waitRunning(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/api/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		var v jobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode job: %v", err)
		}
		if v.Status != StatusQueued {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started", id)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeBackpressure: with one worker and a one-deep queue, a third job
// must bounce with 429 rather than queue unboundedly. The worker is pinned
// by a deliberately huge checkpointed run; shutdown cuts it off at the next
// segment boundary, so the test never pays for the full budget.
func TestServeBackpressure(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 1, CheckpointDir: t.TempDir()})
	big, code := submit[jobView](t, hs.URL, Request{Benchmark: "gzip", Config: "base",
		Budget: 50_000_000, Checkpoint: true, CheckpointEvery: testEvery})
	if code != http.StatusAccepted {
		t.Fatalf("big submit: status %d", code)
	}
	waitRunning(t, hs.URL, big.ID)
	// The only worker is now busy: one more job fits the queue, the next
	// distinct one must bounce.
	if _, code := submit[jobView](t, hs.URL, Request{
		Benchmark: "gzip", Config: "base", Budget: testBudget,
	}); code != http.StatusAccepted {
		t.Fatalf("queued submit: status %d, want 202", code)
	}
	body, code := submit[map[string]string](t, hs.URL, Request{
		Benchmark: "gzip", Config: "base", Budget: testBudget + 64,
	})
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", code)
	}
	if body["error"] == "" {
		t.Error("429 response carries no error message")
	}
	if got := metricValue(t, hs.URL, "ctcpd_jobs_rejected_total"); got != 1 {
		t.Errorf("ctcpd_jobs_rejected_total = %v, want 1", got)
	}
	if got := metricValue(t, hs.URL, "ctcpd_queue_depth"); got != 1 {
		t.Errorf("ctcpd_queue_depth = %v, want 1", got)
	}
}

// TestServeValidation: malformed submissions are 400s with a JSON error.
func TestServeValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	cases := []Request{
		{Benchmark: "no-such-benchmark", Config: "base"},
		{Benchmark: "gzip", Config: "no-such-config"},
		{Benchmark: "gzip", Config: "base", Checkpoint: true}, // no checkpoint dir configured
		{Benchmark: "gzip", Config: "base", SampleInterval: 1000, Checkpoint: true},
	}
	for _, req := range cases {
		body, code := submit[map[string]string](t, hs.URL, req)
		if code != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400", req, code)
		}
		if body["error"] == "" {
			t.Errorf("%+v: no error message in response", req)
		}
	}

	resp, err := http.Get(hs.URL + "/api/v1/results/not-hex")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad fingerprint: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/api/v1/results/00000000deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown fingerprint: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/api/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestServeSampledJob: sampled mode round-trips through the service, and its
// fingerprint is distinct from the full-detail run of the same workload.
func TestServeSampledJob(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	full, code := submit[jobView](t, hs.URL, Request{Benchmark: "gzip", Config: "base", Budget: testBudget})
	if code != http.StatusAccepted {
		t.Fatalf("full submit: %d", code)
	}
	sampled, code := submit[jobView](t, hs.URL, Request{
		Benchmark: "gzip", Config: "base", Budget: testBudget,
		SampleInterval: testEvery, SampleDetail: 2000, SampleWarmup: 500,
	})
	if code != http.StatusAccepted {
		t.Fatalf("sampled submit: %d", code)
	}
	if sampled.Fingerprint == full.Fingerprint {
		t.Error("sampled and full runs share a fingerprint")
	}
	sv := waitJob(t, hs.URL, sampled.ID)
	if sv.Status != StatusDone {
		t.Fatalf("sampled run: status %q error %q", sv.Status, sv.Error)
	}
	if sv.Mode != "sampled" {
		t.Errorf("mode %q, want sampled", sv.Mode)
	}
	if sv.Stats.Retired != testBudget {
		t.Errorf("sampled estimate covers %d insts, want %d", sv.Stats.Retired, testBudget)
	}
	waitJob(t, hs.URL, full.ID)
}

// TestServeListJobs: the listing includes every job in submission order.
func TestServeListJobs(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		v, _ := submit[jobView](t, hs.URL, Request{
			Benchmark: "gzip", Config: "base", Budget: testBudget + uint64(i)*128,
		})
		ids = append(ids, v.ID)
	}
	resp, err := http.Get(hs.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []jobView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != len(ids) {
		t.Fatalf("listed %d jobs, want %d", len(views), len(ids))
	}
	for i, v := range views {
		if v.ID != ids[i] {
			t.Errorf("position %d: job %s, want %s", i, v.ID, ids[i])
		}
	}
	for _, id := range ids {
		waitJob(t, hs.URL, id)
	}
}

// TestStoreRejectsMislabeledRecord: a record copied to the wrong fingerprint
// file name reads as a miss, not as someone else's result.
func TestStoreRejectsMislabeledRecord(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(42); ok {
		t.Fatal("empty store returned a record")
	}
	rec := &Record{Fingerprint: fpHex(42), Benchmark: "gzip", Config: "base",
		Budget: 1, Mode: "full", Stats: &pipeline.Stats{Cycles: 7, Retired: 3}}
	if err := st.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(42)
	if !ok || got.Benchmark != "gzip" {
		t.Fatalf("round trip failed: %+v ok=%v", got, ok)
	}
	// Impersonation: copy the record to a different fingerprint's file name.
	buf, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.path(43), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(43); ok {
		t.Error("mislabeled record was served")
	}
	// Corrupt record: also a miss.
	if err := os.WriteFile(st.path(44), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(44); ok {
		t.Error("corrupt record was served")
	}
	if n := st.Len(); n != 3 {
		t.Errorf("Len = %d, want 3 files on disk", n)
	}
}
