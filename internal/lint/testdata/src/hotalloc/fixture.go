// Fixture for the hotalloc analyzer: a miniature pipeline with a
// //ctcp:hotpath root, a //ctcp:coldpath boundary, rooted and fresh appends,
// closure and method-value escapes, and interface boxing.
package fixture

import "fmt"

type rec struct{ v int }

type sim struct {
	buf  []int
	pool []*rec
}

type iface interface{ m() }

type impl struct{ v int }

func (impl) m() {}

func sink(iface) {}

//ctcp:hotpath
func (s *sim) cycle(xs []int) {
	_ = make([]int, 4)   // want:hotalloc
	_ = new(rec)         // want:hotalloc
	_ = map[int]int{}    // want:hotalloc
	_ = []int{1, 2}      // want:hotalloc
	_ = &rec{}           // want:hotalloc
	_ = fmt.Sprintf("x") // want:hotalloc

	s.buf = append(s.buf, 1) // rooted in a struct field: amortizes
	xs = append(xs, 1)       // rooted in a parameter: caller-owned storage
	tmp := s.buf[:0]
	tmp = append(tmp, 2) // re-slice of a field: still rooted
	_ = tmp
	_ = xs

	fresh := []int{}         // want:hotalloc
	fresh = append(fresh, 1) // want:hotalloc
	_ = fresh

	f := func(i int) int { return i } // bound to a local that is only called: exempt
	_ = f(1)
	func() { s.buf = s.buf[:0] }() // immediately invoked: exempt

	g := func() {} // want:hotalloc
	_ = g

	mv := s.helper // want:hotalloc
	_ = mv

	var x iface
	x = impl{v: 1} // want:hotalloc
	_ = x
	var p *impl
	x = p // pointer-shaped into interface: no allocation
	_ = x
	sink(impl{}) // want:hotalloc

	_ = s.box()
	s.helper()
	s.refill()

	//ctcp:lint-ok hotalloc -- deliberate, measured
	_ = make([]int, 8)
}

// helper is reached transitively from cycle; its allocations are attributed
// to the root.
func (s *sim) helper() {
	_ = make([]int, 1) // want:hotalloc
}

// box is also reached transitively; returning a concrete value through an
// interface result boxes it.
func (s *sim) box() iface {
	return impl{} // want:hotalloc
}

// refill is a deliberate amortized allocation site: the traversal must not
// descend into it.
//
//ctcp:coldpath
func (s *sim) refill() {
	s.pool = append(s.pool, new(rec))
}

//ctcp:hotpath
//ctcp:coldpath
func conflicted() {} // want:hotalloc
