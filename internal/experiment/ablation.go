package experiment

import (
	"ctcp/internal/core"
	"ctcp/internal/pipeline"
	"ctcp/internal/stats"
	"ctcp/internal/workload"
)

// AblationResult reproduces the §5.3 decomposition of where FDRT's
// improvement comes from: Friendly alone, Friendly biased to the middle
// clusters (the paper's "minor adjustment", +4.7%), FDRT with only the
// intra-trace heuristics (chains ablated; paper: +5.7%), full FDRT
// (paper: +11.5%), and FDRT without chain pinning.
type AblationResult struct {
	// Rows: Friendly, FriendlyMiddle, FDRT-intra-only, FDRT, FDRT-NoPin.
	Rows []BenchRow
}

// Ablation runs the strategy decomposition on the six selected benchmarks.
func Ablation(r *Runner) *AblationResult {
	base := BaseConfig()
	intraOnly := base.WithStrategy(core.FDRT, false)
	intraOnly.DisableChains = true
	cfgs := map[string]pipeline.Config{
		"base":         base,
		"friendly":     base.WithStrategy(core.Friendly, false),
		"friendly-mid": base.WithStrategy(core.FriendlyMiddle, false),
		"fdrt-intra":   intraOnly,
		"fdrt":         base.WithStrategy(core.FDRT, false),
		"fdrt-nopin":   base.WithStrategy(core.FDRTNoPin, false),
	}
	r.Prefetch(workload.Selected(), cfgs)
	res := &AblationResult{}
	for _, bm := range workload.Selected() {
		b := r.Run(bm, "base", cfgs["base"])
		fr := r.Run(bm, "friendly", cfgs["friendly"])
		fm := r.Run(bm, "friendly-mid", cfgs["friendly-mid"])
		fi := r.Run(bm, "fdrt-intra", cfgs["fdrt-intra"])
		fd := r.Run(bm, "fdrt", cfgs["fdrt"])
		fn := r.Run(bm, "fdrt-nopin", cfgs["fdrt-nopin"])
		if !statsOK(b, fr, fm, fi, fd, fn) {
			continue
		}
		res.Rows = append(res.Rows, BenchRow{bm.Name, []float64{
			speedup(b, fr), speedup(b, fm), speedup(b, fi),
			speedup(b, fd), speedup(b, fn),
		}})
	}
	return res
}

// HM returns per-variant harmonic means.
func (a *AblationResult) HM() []float64 { return columnHM(a.Rows, 5) }

// Render formats the result.
func (a *AblationResult) Render() string {
	tab := &stats.Table{
		Title:  "Ablation (paper §5.3): where the retire-time improvement comes from",
		Header: []string{"bench", "Friendly", "Friendly-mid", "FDRT intra-only", "FDRT", "FDRT no-pin"},
		Notes: []string{
			"paper: Friendly 1.031, Friendly-middle 1.047, FDRT intra-only 1.057, FDRT 1.115",
		},
	}
	appendRowsWithHM(tab, a.Rows, a.HM())
	return tab.Render()
}
