package pipeline

// Microbenchmarks for the cycle-model hot path. Every paper artifact is a
// full-matrix sweep over this loop, so ns/cycle and allocs/op here bound the
// wall-clock of the whole experiment harness. BenchmarkCycle times the inner
// p.cycle() step in isolation; BenchmarkRunProgram measures end-to-end
// simulation throughput per kernel and reports ns/cycle and sim-cycles/sec.
//
// `make bench` runs these and records the numbers (plus the pre-optimization
// baseline) in BENCH_pipeline.json.

import (
	"testing"

	"ctcp/internal/core"
	"ctcp/internal/emu"
	"ctcp/internal/isa"
	"ctcp/internal/prog"
	"ctcp/internal/workload"
)

const benchInsts = 30_000

// benchKernels are the kernels `make bench` tracks: two pointer/branch-heavy
// integer codes, one cache-hostile pointer chaser, and one FP kernel.
var benchKernels = []string{"gzip", "mcf", "eon", "perlbmk"}

// benchStrategies are the four strategy families whose scheduling cost the
// bench artifact tracks (FriendlyMiddle and FDRTNoPin share the hot-path
// shape of Friendly and FDRT, so they add no information here).
var benchStrategies = []core.StrategyKind{core.Base, core.IssueTime, core.Friendly, core.FDRT}

// benchCycleLoop is the shared inner loop of the per-strategy cycle
// benchmarks: one p.cycle() step per op, reconstructing the pipeline off the
// clock when the program drains.
func benchCycleLoop(b *testing.B, prog *isa.Program, cfg Config) {
	p := New(emu.New(prog), cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.done() {
			b.StopTimer()
			p = New(emu.New(prog), cfg)
			b.StartTimer()
		}
		if p.cycle() {
			p.now++
		} else {
			p.now = p.nextEvent()
		}
	}
}

func BenchmarkCycle(b *testing.B) {
	bm, ok := workload.ByName("gzip")
	if !ok {
		b.Fatal("gzip kernel missing")
	}
	prog := bm.ProgramFor(200_000)
	for _, k := range benchStrategies {
		b.Run(k.String(), func(b *testing.B) {
			benchCycleLoop(b, prog, DefaultConfig().WithStrategy(k, false))
		})
	}
}

// wakeupProg builds a scheduling microkernel that isolates the wakeup/select
// machinery. serial chains every instruction on the previous one, so each
// cycle resolves exactly one RS entry (producer waiter list → readyAt →
// one mask bit) and the issue scan finds a single set bit. parallel emits
// independent instructions that all resolve at dispatch, so the scan walks
// dense ready words with TrailingZeros64. Fetch and memory behaviour are
// trivial in both, leaving wakeup and select as the dominant per-cycle work.
func wakeupProg(serial bool) *isa.Program {
	b := prog.New()
	b.Movi(isa.R(1), 8192)
	b.Movi(isa.R(2), 1)
	b.Label("loop")
	for i := 0; i < 24; i++ {
		if serial {
			b.Op3(isa.ADD, isa.R(3), isa.R(2), isa.R(3))
		} else {
			b.Op3(isa.ADD, isa.R(2), isa.R(2), isa.R(4+i))
		}
	}
	b.OpI(isa.SUB, isa.R(1), 1, isa.R(1))
	b.Branch(isa.BNE, isa.R(1), "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func BenchmarkWakeup(b *testing.B) {
	for _, sub := range []struct {
		name   string
		serial bool
	}{{"chain", true}, {"parallel", false}} {
		b.Run(sub.name, func(b *testing.B) {
			benchCycleLoop(b, wakeupProg(sub.serial), DefaultConfig().WithStrategy(core.FDRT, false))
		})
	}
}

func BenchmarkRunProgram(b *testing.B) {
	for _, name := range benchKernels {
		bm, ok := workload.ByName(name)
		if !ok {
			b.Fatalf("%s kernel missing", name)
		}
		prog := bm.ProgramFor(benchInsts)
		cfg := DefaultConfig().WithStrategy(core.FDRT, false)
		cfg.MaxInsts = benchInsts
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var cycles int64
			for i := 0; i < b.N; i++ {
				cycles += RunProgram(prog, cfg).Cycles
			}
			if cycles == 0 {
				b.Fatal("simulation made no progress")
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}
