package isa

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpTableComplete(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(0); int(op) < NumOps; op++ {
		info := op.Info()
		if info.Name == "" {
			t.Fatalf("opcode %d has no table entry", op)
		}
		if prev, dup := seen[info.Name]; dup {
			t.Fatalf("mnemonic %q used by both %d and %d", info.Name, prev, op)
		}
		seen[info.Name] = op
		back, ok := OpByName(info.Name)
		if !ok || back != op {
			t.Fatalf("OpByName(%q) = %v,%v; want %v,true", info.Name, back, ok, op)
		}
	}
}

func TestRegNaming(t *testing.T) {
	if R(0).String() != "r0" || R(31).String() != "r31" {
		t.Errorf("integer register naming broken: %s %s", R(0), R(31))
	}
	if F(0).String() != "f0" || F(31).String() != "f31" {
		t.Errorf("fp register naming broken: %s %s", F(0), F(31))
	}
	if !F(5).IsFP() || R(5).IsFP() {
		t.Error("IsFP misclassifies registers")
	}
	if !ZeroReg.IsZero() || !FZeroReg.IsZero() || R(3).IsZero() {
		t.Error("IsZero misclassifies registers")
	}
}

func TestRegBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("R(32) did not panic")
		}
	}()
	_ = R(32)
}

func TestSrcsAndDest(t *testing.T) {
	cases := []struct {
		in     Inst
		s1, s2 Reg
		dest   Reg
	}{
		{Inst{Op: ADD, Ra: R(1), Rb: R(2), Rc: R(3)}, R(1), R(2), R(3)},
		{Inst{Op: ADD, Ra: R(1), Imm: 7, UseImm: true, Rc: R(3)}, R(1), NoReg, R(3)},
		{Inst{Op: ADD, Ra: ZeroReg, Rb: R(2), Rc: ZeroReg}, NoReg, R(2), NoReg},
		{Inst{Op: MOVI, Rc: R(9), Imm: 42}, NoReg, NoReg, R(9)},
		{Inst{Op: LDQ, Ra: R(4), Rc: R(5), Imm: 16}, R(4), NoReg, R(5)},
		{Inst{Op: STQ, Ra: R(4), Rb: R(6), Imm: 16}, R(4), R(6), NoReg},
		{Inst{Op: BEQ, Ra: R(7), Imm: 0x1000}, R(7), NoReg, NoReg},
		{Inst{Op: BR, Imm: 0x1000, Rc: NoReg}, NoReg, NoReg, NoReg},
		{Inst{Op: BR, Imm: 0x1000, Rc: RA}, NoReg, NoReg, RA},
		{Inst{Op: JSR, Rb: R(8), Rc: RA}, R(8), NoReg, RA},
		{Inst{Op: RET, Rb: RA}, RA, NoReg, NoReg},
		{Inst{Op: ADDT, Ra: F(1), Rb: F(2), Rc: F(3)}, F(1), F(2), F(3)},
		{Inst{Op: SQRTT, Ra: F(1), Rc: F(3)}, F(1), NoReg, F(3)},
		{Inst{Op: STT, Ra: R(4), Rb: F(6), Imm: 8}, R(4), F(6), NoReg},
		{Inst{Op: FBNE, Ra: F(2), Imm: 0x2000}, F(2), NoReg, NoReg},
		{Inst{Op: HALT}, NoReg, NoReg, NoReg},
		{Inst{Op: OUT, Ra: R(2)}, R(2), NoReg, NoReg},
		{Inst{Op: NOP}, NoReg, NoReg, NoReg},
	}
	for _, c := range cases {
		s1, s2 := c.in.Srcs()
		if s1 != c.s1 || s2 != c.s2 {
			t.Errorf("%v: Srcs() = %v,%v; want %v,%v", c.in, s1, s2, c.s1, c.s2)
		}
		if d := c.in.Dest(); d != c.dest {
			t.Errorf("%v: Dest() = %v; want %v", c.in, d, c.dest)
		}
	}
}

func TestNumSrcs(t *testing.T) {
	if n := (Inst{Op: ADD, Ra: R(1), Rb: R(2), Rc: R(3)}).NumSrcs(); n != 2 {
		t.Errorf("NumSrcs = %d, want 2", n)
	}
	if n := (Inst{Op: MOVI, Rc: R(1)}).NumSrcs(); n != 0 {
		t.Errorf("NumSrcs = %d, want 0", n)
	}
}

func TestClassPredicates(t *testing.T) {
	if !LDQ.Class().IsLoad() || !LDQ.Class().IsMem() || LDQ.Class().IsStore() {
		t.Error("LDQ class predicates wrong")
	}
	if !STT.Class().IsStore() || !STT.Class().IsMem() {
		t.Error("STT class predicates wrong")
	}
	if !BEQ.Class().IsControl() || !RET.Class().IsControl() || ADD.Class().IsControl() {
		t.Error("control predicates wrong")
	}
	if !(Inst{Op: JMP, Rb: R(1)}).IsIndirect() || (Inst{Op: BR}).IsIndirect() {
		t.Error("IsIndirect wrong")
	}
	if !(Inst{Op: BNE, Ra: R(1)}).IsCond() || (Inst{Op: BR}).IsCond() {
		t.Error("IsCond wrong")
	}
}

// randomCanonInst builds a random but well-formed instruction and returns its
// canonical form.
func randomCanonInst(r *rand.Rand) Inst {
	op := Op(r.Intn(NumOps))
	in := Inst{
		Op:     op,
		Ra:     Reg(r.Intn(NumRegs)),
		Rb:     Reg(r.Intn(NumRegs)),
		Rc:     Reg(r.Intn(NumRegs)),
		Imm:    int64(int32(r.Uint32())),
		UseImm: r.Intn(2) == 0,
	}
	return in.Canon()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for k := 0; k < 32; k++ {
			in := randomCanonInst(r)
			w := in.Encode()
			out, err := Decode(w)
			if err != nil {
				t.Logf("decode error for %v: %v", in, err)
				return false
			}
			if out != in {
				t.Logf("round trip mismatch: in=%+v out=%+v", in, out)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	if _, err := Decode(uint64(NumOps) + 5); err == nil {
		t.Error("Decode accepted undefined opcode")
	}
}

func TestEncodePanicsOnHugeImm(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Encode did not panic on out-of-range immediate")
		}
	}()
	_ = Inst{Op: MOVI, Rc: R(1), Imm: 1 << 40}.Encode()
}

func TestInstString(t *testing.T) {
	cases := map[string]Inst{
		"add r1, r2, r3": {Op: ADD, Ra: R(1), Rb: R(2), Rc: R(3)},
		"add r1, 5, r3":  {Op: ADD, Ra: R(1), Imm: 5, UseImm: true, Rc: R(3)},
		"movi r9, 42":    {Op: MOVI, Rc: R(9), Imm: 42},
		"ldq r5, 16(r4)": {Op: LDQ, Ra: R(4), Rc: R(5), Imm: 16},
		"stq r6, 16(r4)": {Op: STQ, Ra: R(4), Rb: R(6), Imm: 16},
		"beq r7, 0x1000": {Op: BEQ, Ra: R(7), Imm: 0x1000},
		"jsr r26, (r8)":  {Op: JSR, Rb: R(8), Rc: RA},
		"ret (r26)":      {Op: RET, Rb: RA},
		"sqrtt f1, f3":   {Op: SQRTT, Ra: F(1), Rc: F(3)},
		"stt f6, 8(r4)":  {Op: STT, Ra: R(4), Rb: F(6), Imm: 8},
		"halt":           {Op: HALT},
		"out r2":         {Op: OUT, Ra: R(2)},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestProgramInstAt(t *testing.T) {
	p := &Program{
		TextBase: DefaultTextBase,
		Text: []Inst{
			{Op: MOVI, Rc: R(1), Imm: 1},
			{Op: HALT},
		},
	}
	if in, ok := p.InstAt(DefaultTextBase); !ok || in.Op != MOVI {
		t.Errorf("InstAt(base) = %v,%v", in, ok)
	}
	if in, ok := p.InstAt(DefaultTextBase + 4); !ok || in.Op != HALT {
		t.Errorf("InstAt(base+4) = %v,%v", in, ok)
	}
	if _, ok := p.InstAt(DefaultTextBase + 8); ok {
		t.Error("InstAt past end succeeded")
	}
	if _, ok := p.InstAt(DefaultTextBase + 2); ok {
		t.Error("InstAt misaligned succeeded")
	}
	if _, ok := p.InstAt(DefaultTextBase - 4); ok {
		t.Error("InstAt below base succeeded")
	}
	if got := p.TextEnd(); got != DefaultTextBase+8 {
		t.Errorf("TextEnd = %#x", got)
	}
}

func TestProgramSaveLoadRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := &Program{
		TextBase: DefaultTextBase,
		DataBase: DefaultDataBase,
		Entry:    DefaultTextBase + 8,
		Data:     []byte{1, 2, 3, 4, 5},
	}
	for i := 0; i < 100; i++ {
		p.Text = append(p.Text, randomCanonInst(r))
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	q, err := LoadProgram(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if q.TextBase != p.TextBase || q.DataBase != p.DataBase || q.Entry != p.Entry {
		t.Error("header fields did not round trip")
	}
	if len(q.Text) != len(p.Text) {
		t.Fatalf("text length %d != %d", len(q.Text), len(p.Text))
	}
	for i := range p.Text {
		if q.Text[i] != p.Text[i] {
			t.Fatalf("text[%d]: %+v != %+v", i, q.Text[i], p.Text[i])
		}
	}
	if !bytes.Equal(q.Data, p.Data) {
		t.Error("data did not round trip")
	}
}

func TestSortedSymbols(t *testing.T) {
	p := &Program{Symbols: map[string]uint64{"b": 8, "a": 4, "c": 4}}
	got := p.SortedSymbols()
	want := []string{"a", "c", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedSymbols = %v, want %v", got, want)
		}
	}
	if name, ok := p.SymbolFor(8); !ok || name != "b" {
		t.Errorf("SymbolFor(8) = %q,%v", name, ok)
	}
}
