// ctcplint runs the module's static analysis suite (internal/lint) over the
// whole module and reports file:line diagnostics. It exits 0 when the tree is
// clean, 1 when any diagnostic survives, 2 on a load or usage error.
//
// Usage:
//
//	ctcplint [-json] [-rules name,name] [./...]
//
// The only supported pattern is the whole module ("./..." or no argument);
// the analyzers' own Match scopes decide which packages each rule inspects.
//
// After the analyzers run, the suppression audit reports (as rule
// "suppressaudit") every //ctcp:lint-ok comment whose rule ran but matched
// no finding, and every //ctcp:coldlock annotation that exempted nothing —
// stale waivers fail the lint exactly like real findings, so they cannot
// accumulate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ctcp/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("ctcplint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list registered rules and exit")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ctcplint [-json] [-rules name,name] [./...]\n\nrules:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", lint.AuditRule,
			"stale //ctcp:lint-ok or //ctcp:coldlock waiver (always on for the rules that ran)")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	for _, arg := range fs.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "ctcplint: unsupported pattern %q (only the whole module is lintable; use ./...)\n", arg)
			return 2
		}
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(os.Stdout, "%s\t%s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stdout, "%s\t%s\n", lint.AuditRule,
			"stale //ctcp:lint-ok or //ctcp:coldlock waiver (always on for the rules that ran)")
		return 0
	}
	if *rules != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*rules, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "ctcplint: unknown rule %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := lint.NewLoader("")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcplint: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctcplint: %v\n", err)
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	diags = append(diags, lint.Audit(pkgs, analyzers)...)
	lint.SortDiagnostics(diags)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Column:  d.Pos.Column,
				Rule:    d.Rule,
				Message: d.Message,
			})
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "ctcplint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stdout, d.String())
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// jsonDiag is the -json output shape; stable field names are part of the
// tool's interface.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}
