package emu

import (
	"math"
	"testing"
	"testing/quick"

	"ctcp/internal/isa"
)

// prog builds a program whose text is the given instructions, with a small
// data segment.
func prog(data []byte, insts ...isa.Inst) *isa.Program {
	return &isa.Program{
		TextBase: isa.DefaultTextBase,
		DataBase: isa.DefaultDataBase,
		Entry:    isa.DefaultTextBase,
		Text:     insts,
		Data:     data,
	}
}

func run(t *testing.T, p *isa.Program) *Machine {
	t.Helper()
	m := New(p)
	if _, err := m.Run(100000); err != nil {
		t.Fatalf("run fault: %v", err)
	}
	if !m.Halted() {
		t.Fatal("program did not halt within budget")
	}
	return m
}

func TestArithmeticAndLogic(t *testing.T) {
	m := run(t, prog(nil,
		isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 40},
		isa.Inst{Op: isa.ADD, Ra: isa.R(1), Imm: 2, UseImm: true, Rc: isa.R(2)},
		isa.Inst{Op: isa.SUB, Ra: isa.R(2), Rb: isa.R(1), Rc: isa.R(3)},
		isa.Inst{Op: isa.MUL, Ra: isa.R(2), Rb: isa.R(2), Rc: isa.R(4)},
		isa.Inst{Op: isa.DIV, Ra: isa.R(4), Imm: 7, UseImm: true, Rc: isa.R(5)},
		isa.Inst{Op: isa.REM, Ra: isa.R(4), Imm: 7, UseImm: true, Rc: isa.R(6)},
		isa.Inst{Op: isa.SLL, Ra: isa.R(1), Imm: 3, UseImm: true, Rc: isa.R(7)},
		isa.Inst{Op: isa.SRA, Ra: isa.R(7), Imm: 2, UseImm: true, Rc: isa.R(8)},
		isa.Inst{Op: isa.XOR, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(9)},
		isa.Inst{Op: isa.CMPLT, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(10)},
		isa.Inst{Op: isa.HALT},
	))
	want := map[isa.Reg]uint64{
		isa.R(2):  42,
		isa.R(3):  2,
		isa.R(4):  42 * 42,
		isa.R(5):  252,
		isa.R(6):  0,
		isa.R(7):  320,
		isa.R(8):  80,
		isa.R(9):  40 ^ 42,
		isa.R(10): 1,
	}
	for r, v := range want {
		if got := m.Regs[r]; got != v {
			t.Errorf("%v = %d, want %d", r, got, v)
		}
	}
}

func TestDivideByZeroIsZero(t *testing.T) {
	m := run(t, prog(nil,
		isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 5},
		isa.Inst{Op: isa.DIV, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(3)},
		isa.Inst{Op: isa.REM, Ra: isa.R(1), Rb: isa.R(2), Rc: isa.R(4)},
		isa.Inst{Op: isa.HALT},
	))
	if m.Regs[isa.R(3)] != 0 || m.Regs[isa.R(4)] != 0 {
		t.Errorf("div/rem by zero = %d,%d; want 0,0", m.Regs[isa.R(3)], m.Regs[isa.R(4)])
	}
}

func TestZeroRegisterSemantics(t *testing.T) {
	m := run(t, prog(nil,
		isa.Inst{Op: isa.MOVI, Rc: isa.ZeroReg, Imm: 99}, // write discarded
		isa.Inst{Op: isa.ADD, Ra: isa.ZeroReg, Imm: 7, UseImm: true, Rc: isa.R(1)},
		isa.Inst{Op: isa.HALT},
	))
	if m.Regs[isa.ZeroReg] != 0 {
		t.Error("zero register was written")
	}
	if m.Regs[isa.R(1)] != 7 {
		t.Errorf("r1 = %d, want 7", m.Regs[isa.R(1)])
	}
}

func TestLoadsAndStores(t *testing.T) {
	base := int64(isa.DefaultDataBase)
	m := run(t, prog(make([]byte, 64),
		isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: base},
		isa.Inst{Op: isa.MOVI, Rc: isa.R(2), Imm: -2}, // 0xFFFF...FE
		isa.Inst{Op: isa.STQ, Ra: isa.R(1), Rb: isa.R(2), Imm: 0},
		isa.Inst{Op: isa.STL, Ra: isa.R(1), Rb: isa.R(2), Imm: 16},
		isa.Inst{Op: isa.STW, Ra: isa.R(1), Rb: isa.R(2), Imm: 24},
		isa.Inst{Op: isa.STB, Ra: isa.R(1), Rb: isa.R(2), Imm: 32},
		isa.Inst{Op: isa.LDQ, Ra: isa.R(1), Rc: isa.R(10), Imm: 0},
		isa.Inst{Op: isa.LDL, Ra: isa.R(1), Rc: isa.R(11), Imm: 16},
		isa.Inst{Op: isa.LDW, Ra: isa.R(1), Rc: isa.R(12), Imm: 24},
		isa.Inst{Op: isa.LDBU, Ra: isa.R(1), Rc: isa.R(13), Imm: 32},
		isa.Inst{Op: isa.HALT},
	))
	if got := m.Regs[isa.R(10)]; got != uint64(0xFFFFFFFFFFFFFFFE) {
		t.Errorf("ldq = %#x", got)
	}
	if got := m.Regs[isa.R(11)]; got != uint64(0xFFFFFFFFFFFFFFFE) {
		t.Errorf("ldl (sign-extended) = %#x", got)
	}
	if got := m.Regs[isa.R(12)]; got != 0xFFFE {
		t.Errorf("ldw (zero-extended) = %#x", got)
	}
	if got := m.Regs[isa.R(13)]; got != 0xFE {
		t.Errorf("ldbu = %#x", got)
	}
}

func TestBranchLoop(t *testing.T) {
	// r1 = 10; loop: r2 += r1; r1--; bne r1, loop
	loop := isa.DefaultTextBase + 4
	m := run(t, prog(nil,
		isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 10},
		isa.Inst{Op: isa.ADD, Ra: isa.R(2), Rb: isa.R(1), Rc: isa.R(2)},
		isa.Inst{Op: isa.SUB, Ra: isa.R(1), Imm: 1, UseImm: true, Rc: isa.R(1)},
		isa.Inst{Op: isa.BNE, Ra: isa.R(1), Imm: int64(loop)},
		isa.Inst{Op: isa.HALT},
	))
	if m.Regs[isa.R(2)] != 55 {
		t.Errorf("sum = %d, want 55", m.Regs[isa.R(2)])
	}
}

func TestJSRAndRET(t *testing.T) {
	// main: jsr ra,(r1) where r1 = func; func: movi r5,123; ret (ra)
	funcAddr := isa.DefaultTextBase + 16
	m := run(t, prog(nil,
		isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: int64(funcAddr)},
		isa.Inst{Op: isa.JSR, Rb: isa.R(1), Rc: isa.RA},
		isa.Inst{Op: isa.MOVI, Rc: isa.R(6), Imm: 1}, // return lands here
		isa.Inst{Op: isa.HALT},
		isa.Inst{Op: isa.MOVI, Rc: isa.R(5), Imm: 123}, // funcAddr
		isa.Inst{Op: isa.RET, Rb: isa.RA},
	))
	if m.Regs[isa.R(5)] != 123 || m.Regs[isa.R(6)] != 1 {
		t.Errorf("call/return failed: r5=%d r6=%d", m.Regs[isa.R(5)], m.Regs[isa.R(6)])
	}
}

func TestFloatingPoint(t *testing.T) {
	m := run(t, prog(nil,
		isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 9},
		isa.Inst{Op: isa.CVTQT, Ra: isa.R(1), Rc: isa.F(1)},
		isa.Inst{Op: isa.SQRTT, Ra: isa.F(1), Rc: isa.F(2)},
		isa.Inst{Op: isa.ADDT, Ra: isa.F(2), Rb: isa.F(2), Rc: isa.F(3)},
		isa.Inst{Op: isa.MULT, Ra: isa.F(3), Rb: isa.F(2), Rc: isa.F(4)},
		isa.Inst{Op: isa.CMPTLT, Ra: isa.F(2), Rb: isa.F(3), Rc: isa.F(5)},
		isa.Inst{Op: isa.CVTTQ, Ra: isa.F(4), Rc: isa.R(2)},
		isa.Inst{Op: isa.HALT},
	))
	if got := math.Float64frombits(m.Regs[isa.F(2)]); got != 3.0 {
		t.Errorf("sqrt(9) = %v", got)
	}
	if got := math.Float64frombits(m.Regs[isa.F(5)]); got != 2.0 {
		t.Errorf("cmptlt true = %v, want 2.0", got)
	}
	if m.Regs[isa.R(2)] != 18 {
		t.Errorf("cvttq = %d, want 18", m.Regs[isa.R(2)])
	}
}

func TestFPBranch(t *testing.T) {
	m := run(t, prog(nil,
		isa.Inst{Op: isa.FBEQ, Ra: isa.F(1), Imm: int64(isa.DefaultTextBase + 12)}, // taken: f1==0
		isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 111},                             // skipped
		isa.Inst{Op: isa.HALT},
		isa.Inst{Op: isa.MOVI, Rc: isa.R(2), Imm: 222},
		isa.Inst{Op: isa.HALT},
	))
	if m.Regs[isa.R(1)] != 0 || m.Regs[isa.R(2)] != 222 {
		t.Errorf("fbeq path wrong: r1=%d r2=%d", m.Regs[isa.R(1)], m.Regs[isa.R(2)])
	}
}

func TestOutChecksumDeterministic(t *testing.T) {
	p := prog(nil,
		isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 7},
		isa.Inst{Op: isa.OUT, Ra: isa.R(1)},
		isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 9},
		isa.Inst{Op: isa.OUT, Ra: isa.R(1)},
		isa.Inst{Op: isa.HALT},
	)
	m1, m2 := run(t, p), run(t, p)
	if m1.OutHash == 0 {
		t.Error("OutHash not accumulated")
	}
	if m1.OutHash != m2.OutHash {
		t.Error("OutHash not deterministic")
	}
	if len(m1.OutValues) != 2 || m1.OutValues[0] != 7 || m1.OutValues[1] != 9 {
		t.Errorf("OutValues = %v", m1.OutValues)
	}
}

func TestCommittedRecords(t *testing.T) {
	base := int64(isa.DefaultDataBase)
	p := prog(make([]byte, 16),
		isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: base},
		isa.Inst{Op: isa.STQ, Ra: isa.R(1), Rb: isa.R(2), Imm: 8},
		isa.Inst{Op: isa.BEQ, Ra: isa.R(2), Imm: int64(isa.DefaultTextBase + 16)},
		isa.Inst{Op: isa.NOP}, // skipped
		isa.Inst{Op: isa.HALT},
	)
	m := New(p)
	var recs []Committed
	for {
		c, ok := m.Next()
		if !ok {
			break
		}
		recs = append(recs, c)
	}
	if len(recs) != 4 {
		t.Fatalf("committed %d records, want 4", len(recs))
	}
	if recs[1].EA != uint64(base)+8 || recs[1].Size != 8 {
		t.Errorf("store record EA=%#x size=%d", recs[1].EA, recs[1].Size)
	}
	if !recs[2].Taken || recs[2].NextPC != isa.DefaultTextBase+16 {
		t.Errorf("branch record taken=%v next=%#x", recs[2].Taken, recs[2].NextPC)
	}
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Errorf("rec %d has seq %d", i, r.Seq)
		}
	}
	if recs[0].NextPC != recs[1].PC || recs[2].NextPC != recs[3].PC {
		t.Error("NextPC chain broken")
	}
}

func TestFaultOnWildPC(t *testing.T) {
	m := New(prog(nil, isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 0x500000},
		isa.Inst{Op: isa.JMP, Rb: isa.R(1)}))
	_, err := m.Run(10)
	if err == nil {
		t.Fatal("expected fault for pc outside text")
	}
	if _, ok := err.(*Fault); !ok {
		t.Fatalf("error type %T, want *Fault", err)
	}
	if _, ok := m.Next(); ok {
		t.Error("Next succeeded after fault")
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	p := prog([]byte{1, 2, 3},
		isa.Inst{Op: isa.MOVI, Rc: isa.R(1), Imm: 5},
		isa.Inst{Op: isa.HALT})
	m := New(p)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.Halted() || m.InstCount() != 0 || m.PC != p.Entry {
		t.Error("Reset did not clear state")
	}
	if m.Regs[isa.SP] != isa.StackTop || m.Regs[isa.GP] != p.DataBase {
		t.Error("Reset did not reinitialize SP/GP")
	}
	if m.Mem.LoadByte(p.DataBase+1) != 2 {
		t.Error("Reset did not reload data segment")
	}
}

func TestLimitStream(t *testing.T) {
	recs := make([]Committed, 10)
	ls := &LimitStream{S: &SliceStream{Recs: recs}, Budget: 4}
	n := 0
	for {
		if _, ok := ls.Next(); !ok {
			break
		}
		n++
	}
	if n != 4 {
		t.Errorf("LimitStream delivered %d, want 4", n)
	}
}

func TestMemoryReadWriteQuick(t *testing.T) {
	f := func(addr uint64, val uint64, szSel uint8) bool {
		addr &= 0xFFFF_FFFF // keep the page map small
		size := []int{1, 2, 4, 8}[szSel%4]
		m := NewMemory()
		m.Write(addr, val, size)
		want := val
		if size < 8 {
			want &= 1<<(8*size) - 1
		}
		return m.Read(addr, size) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMemoryPageStraddle(t *testing.T) {
	m := NewMemory()
	addr := uint64(2*pageSize - 3) // 8-byte access crosses page boundary
	m.Write(addr, 0x1122334455667788, 8)
	if got := m.Read(addr, 8); got != 0x1122334455667788 {
		t.Errorf("straddling read = %#x", got)
	}
	if m.PageCount() != 2 {
		t.Errorf("pages touched = %d, want 2", m.PageCount())
	}
}

func TestMemoryBulkBytes(t *testing.T) {
	m := NewMemory()
	data := make([]byte, 3*pageSize+17)
	for i := range data {
		data[i] = byte(i * 7)
	}
	m.WriteBytes(pageSize-5, data)
	got := m.ReadBytes(pageSize-5, len(data))
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: got %d want %d", i, got[i], data[i])
		}
	}
}
