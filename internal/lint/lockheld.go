package lint

// lockheld: no blocking operation while a sync.Mutex/RWMutex is held.
//
// The analyzer tracks lock regions per CFG path with a may-analysis: a
// block's entry set is the union of its predecessors' exit sets, so "the
// mutex may still be held here" survives joins and partially-unlocking
// branches. Within a region it flags:
//
//   - file/network I/O: calls into os, net, net/http, os/exec, syscall
//     (os environment accessors exempt), and calls to module functions whose
//     transitive static call graph reaches one — snap.WriteFile*/ReadFile*
//     and serve's store reads are caught this way, with a witness chain;
//   - channel sends and receives, range over a channel, and selects without
//     a default clause (a select with a default, the lossy fan-out idiom, is
//     non-blocking by construction);
//   - time.Sleep and sync.WaitGroup.Wait. sync.Cond.Wait is exempt: it
//     releases the mutex while parked, which is the point of the idiom.
//
// `defer mu.Unlock()` leaves the region open to function exit (correct: the
// lock really is held until return). Operations inside go statements run on
// another goroutine and are excluded; operations inside defer statements are
// excluded too (a granularity limit — deferred work runs at return, usually
// after the deferred unlock, but ordering among defers is not modeled).
//
// The escape hatch is //ctcp:coldlock on the function declaration: the
// function's own lock regions are not analyzed, and calls to it are treated
// as non-blocking. It is for locks whose entire purpose is serializing the
// I/O itself (the queue journal's dedicated leaf mutex). Stale hatches are
// reported by the suppression audit.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

const coldlockMarker = "ctcp:coldlock"

var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "blocking operation (I/O, channel op, sleep) while a sync mutex is held",
	Match: func(pkgPath string) bool {
		return pathIn(pkgPath, "internal/serve", "internal/experiment", "internal/snap")
	},
	RunModule: runLockHeld,
}

// lockOp is one mutex acquisition or release at a CFG node.
type lockOp struct {
	acquire bool
	key     string
	pos     token.Pos
}

// mutexMethod classifies a call as a sync.Mutex/RWMutex method and returns
// the receiver expression (the lock) and whether it acquires.
func mutexMethod(pkg *Package, call *ast.CallExpr) (recv ast.Expr, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil, false, false
	}
	named := recvNamed(sig.Recv().Type())
	if named == nil {
		return nil, false, false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return nil, false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return sel.X, true, true
	case "Unlock", "RUnlock":
		return sel.X, false, true
	}
	return nil, false, false
}

// nodeLockOps extracts the mutex operations of one CFG node in source order.
// Like blockScanner it skips function literals, go statements, and defers —
// so `defer mu.Unlock()` is a no-op and the region stays open to exit.
// keyFn names the lock (local or global identity, per analyzer).
func nodeLockOps(pkg *Package, n ast.Node, keyFn func(ast.Expr) string) []lockOp {
	var scanRoot ast.Node = n
	switch n := n.(type) {
	case *ast.RangeStmt:
		scanRoot = n.X // header-only node
	case *ast.SelectStmt:
		return nil // header-only node; comm clauses are separate nodes
	}
	var ops []lockOp
	ast.Inspect(scanRoot, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if recv, acquire, ok := mutexMethod(pkg, m); ok {
				if key := keyFn(recv); key != "" {
					ops = append(ops, lockOp{acquire: acquire, key: key, pos: m.Pos()})
				}
			}
		}
		return true
	})
	return ops
}

// localLockKey names a lock within one function by its receiver expression's
// source form — stable per function, which is all the intraprocedural region
// analysis needs.
func localLockKey(e ast.Expr) string { return types.ExprString(e) }

// heldSet maps lock keys to the position of their (earliest seen)
// acquisition.
type heldSet map[string]token.Pos

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h { // set copy; order-insensitive
		c[k] = v
	}
	return c
}

// mergeInto unions src into dst and reports whether dst grew.
func mergeInto(dst, src heldSet) bool {
	grew := false
	for k, v := range src { // set union; order-insensitive
		if _, ok := dst[k]; !ok {
			dst[k] = v
			grew = true
		}
	}
	return grew
}

// lockWalk runs the may-held fixpoint over a CFG and then calls visit once
// per node with the converged set of locks held immediately before it.
func lockWalk(g *CFG, ops func(n ast.Node) []lockOp, visit func(n ast.Node, held heldSet)) {
	in := make([]heldSet, len(g.Blocks))
	for i := range in {
		in[i] = heldSet{}
	}
	apply := func(h heldSet, n ast.Node) {
		for _, op := range ops(n) {
			if op.acquire {
				if _, ok := h[op.key]; !ok {
					h[op.key] = op.pos
				}
			} else {
				delete(h, op.key)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range g.Blocks {
			out := in[blk.Index].clone()
			for _, n := range blk.Nodes {
				apply(out, n)
			}
			for _, succ := range blk.Succs {
				if mergeInto(in[succ.Index], out) {
					changed = true
				}
			}
		}
	}
	for _, blk := range g.Blocks {
		h := in[blk.Index].clone()
		for _, n := range blk.Nodes {
			visit(n, h)
			apply(h, n)
		}
	}
}

// heldNames renders a held set for a diagnostic: sorted lock names with
// their acquisition sites.
func heldNames(pkg *Package, held heldSet) string {
	keys := make([]string, 0, len(held))
	for k := range held { // keys are collected and sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s (acquired at %s)", k, shortPos(pkg.Fset, held[k]))
	}
	return out
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// coldlockFuncs collects every //ctcp:coldlock-annotated declaration across
// the module, keyed by function object, with the annotation comment position
// for the suppression audit.
func coldlockFuncs(pkgs []*Package) (map[*types.Func]bool, map[*types.Func]token.Pos) {
	cold := map[*types.Func]bool{}
	pos := map[*types.Func]token.Pos{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !funcAnnotated(fd, coldlockMarker) {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					cold[fn] = true
					pos[fn] = annotationPos(fd, coldlockMarker)
				}
			}
		}
	}
	return cold, pos
}

func runLockHeld(mp *ModulePass) {
	cg := buildCallGraph(mp.Pkgs)
	cold, _ := coldlockFuncs(mp.Pkgs)
	blocking := cg.blockingFuncs(cold)
	// blockingRaw ignores the hatch: a coldlock annotation is "used" (and so
	// survives the suppression audit) only if the function it exempts really
	// would block.
	blockingRaw := cg.blockingFuncs(nil)

	markColdUse := func(fn *types.Func) {
		if f := cg.decls[fn]; f != nil && blockingRaw[fn] != nil {
			f.pkg.markColdlockUsed(fn)
		}
	}

	for _, f := range cg.order {
		if mp.Analyzer.Match != nil && !mp.Analyzer.Match(f.pkg.Path) {
			continue
		}
		if cold[f.fn] {
			// The hatch exempts the function's own regions. It is "used" if
			// those regions really guard blocking work.
			if blockingRaw[f.fn] != nil && len(functionLockAcquires(f.pkg, f.decl)) > 0 {
				f.pkg.markColdlockUsed(f.fn)
			}
			continue
		}
		pkg, decl := f.pkg, f.decl
		bs := &blockScanner{
			pkg:   pkg,
			comms: selectComms(decl.Body),
			call: func(call *ast.CallExpr, fn *types.Func) *blockCause {
				if cold[fn] {
					markColdUse(fn)
					return nil
				}
				if _, isModule := cg.decls[fn]; isModule {
					if c := blocking[fn]; c != nil {
						return &blockCause{root: c.root, via: displayFunc(fn), pos: call.Pos()}
					}
					return nil
				}
				return stdlibBlockCause(fn, call.Pos())
			},
		}
		g := BuildCFG(decl.Body)
		ops := func(n ast.Node) []lockOp { return nodeLockOps(pkg, n, localLockKey) }
		lockWalk(g, ops, func(n ast.Node, held heldSet) {
			if len(held) == 0 {
				return
			}
			if c := bs.scanHeader(n); c != nil {
				mp.Reportf(pkg, c.pos, "%s while %s is held; move the blocking work off the lock (reserve-then-fill / copy-then-release) or annotate the function //ctcp:coldlock with a reason",
					c.describe(), heldNames(pkg, held))
			}
		})
	}
}

// functionLockAcquires lists the mutex acquisitions anywhere in a function
// body (outside go/defer/function literals).
func functionLockAcquires(pkg *Package, decl *ast.FuncDecl) []lockOp {
	var ops []lockOp
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if recv, acquire, ok := mutexMethod(pkg, n); ok && acquire {
				ops = append(ops, lockOp{acquire: true, key: localLockKey(recv), pos: n.Pos()})
			}
		}
		return true
	})
	return ops
}
