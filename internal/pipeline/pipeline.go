package pipeline

import (
	"fmt"

	"ctcp/internal/bpred"
	"ctcp/internal/cachesim"
	"ctcp/internal/cluster"
	"ctcp/internal/core"
	"ctcp/internal/emu"
	"ctcp/internal/isa"
	"ctcp/internal/trace"
)

const unknown = int64(-1)

// inflight is one instruction between fetch and retirement. Records are
// pooled: retirement parks them in a graveyard until no older reference can
// remain (see reclaim), after which they are reused for new fetches.
type inflight struct {
	rec     emu.Committed
	fromTC  bool
	group   uint64 // fetch-group (trace instance) identity
	cluster int    // execution cluster (-1 until steered)
	station cluster.RSKind
	profile trace.Profile

	renameReady   int64 // earliest rename cycle (fetch + decode done)
	dispatchReady int64
	rfReady       int64
	inRS          bool
	issued        bool
	resultAt      int64 // cycle the result is available in its own cluster
	doneAt        int64 // retirement eligibility
	retired       bool

	src       [2]isa.Reg
	prod      [2]*inflight
	prevStore *inflight
	isLoad    bool
	isStore   bool

	mispredict bool

	critSrc       core.CritSrc
	critForwarded bool
	critProd      *inflight

	// freeAfter is the rename count stamped at retirement; the record is
	// recycled once that many instructions have retired.
	freeAfter uint64
}

// Pipeline is the cycle-level CTCP model.
type Pipeline struct {
	cfg  Config
	geom cluster.Geometry

	bp     *bpred.Predictor
	tc     *trace.Cache
	fill   *core.FillUnit
	icache *cachesim.Cache
	mem    *cachesim.Hierarchy

	stream emu.Stream
	// predictCond is p.bp.PredictCond bound once; creating the method value
	// at every trace cache lookup allocated a closure per fetch.
	predictCond func(uint64) bool
	peekedRec   emu.Committed
	havePeek    bool
	streamDone  bool

	now int64

	rob    infQueue // program order; front is oldest
	fetchQ infQueue

	dispatchQ []infQueue  // per-cluster in-order queues (slot-based)
	steerQ    []*inflight // global in-order queue (issue-time steering)

	rsEntries [][]*inflight // per-cluster, age-ordered
	rsCount   [][]int       // per-cluster per-station occupancy
	fuFree    [][]int64     // per-cluster per-FU next-free cycle

	renameMap  [isa.NumRegs]*inflight
	lastStore  *inflight
	loadsInROB int
	renamed    uint64 // total instructions renamed (pool recycling epoch)

	sbDrain   []int64 // store buffer: drain completion times
	lastDrain int64
	ports     portSched

	pendingRedirect *inflight
	nextFetch       int64
	btbBubble       int64
	groupSeq        uint64

	pcHist pcTable // per-static-PC producer history (Table 3)

	lastRetireCycle int64

	// consumed counts committed records pulled from the stream, including
	// the one buffered in peekedRec. fetchLimit, when non-zero, pauses
	// fetch once consumed reaches it: the mechanism behind segmented RunTo
	// execution and drained-boundary snapshots.
	consumed   uint64
	fetchLimit uint64

	// scr groups the transient scratch state — object pools and per-cycle
	// buffers — that checkpointing deliberately excludes: a snapshot never
	// serializes it, and a restored pipeline starts with the empty scratch
	// its constructor built.
	scr scratch

	S Stats
}

// scratch holds the pipeline's pooled and per-cycle transient state,
// segregated from the architectural and profile state that Snapshot must
// capture. At a drained boundary the pools hold only recycled storage and
// the per-cycle buffers are stale, so none of it carries information
// forward.
type scratch struct {
	// Object pool: freeList holds recycled records, graveyard holds retired
	// records whose references may still be live.
	freeList  []*inflight
	graveyard infQueue

	// Per-cycle scratch, reused across cycles. writeUsed is the flattened
	// [cluster][station] write-port usage; fetchBuf collects one fetch
	// group; clusterBudget is the per-cluster steering budget.
	writeUsed     []int
	clusterBudget []int
	fetchBuf      []*inflight
}

// New builds a pipeline reading committed instructions from stream. The
// configuration is validated up front: a bad Config panics *core.InvariantError
// immediately (recovered into a *SimError by RunProgramErr) rather than
// failing later inside the model.
func New(stream emu.Stream, cfg Config) *Pipeline {
	if err := cfg.Validate(); err != nil {
		panic(&core.InvariantError{Msg: err.Error()})
	}
	g := cfg.Geom
	p := &Pipeline{
		cfg:       cfg,
		geom:      g,
		bp:        bpred.New(cfg.BP),
		tc:        trace.NewCache(cfg.Trace),
		icache:    cachesim.New(cfg.ICache),
		mem:       cachesim.NewHierarchy(cfg.Mem),
		stream:    stream,
		ports:     newPortSched(),
		lastDrain: -1,
	}
	p.predictCond = p.bp.PredictCond
	p.fill = core.NewFillUnit(core.Config{
		Strategy:      cfg.Strategy,
		DisableChains: cfg.DisableChains,
		Geom:          g,
		Trace:         cfg.Trace,
	}, p.tc)
	p.dispatchQ = make([]infQueue, g.Clusters)
	p.rsEntries = make([][]*inflight, g.Clusters)
	p.rsCount = make([][]int, g.Clusters)
	p.fuFree = make([][]int64, g.Clusters)
	for c := 0; c < g.Clusters; c++ {
		p.rsCount[c] = make([]int, cluster.NumRSKinds)
		p.fuFree[c] = make([]int64, cluster.NumFUKinds)
	}
	p.scr.writeUsed = make([]int, g.Clusters*int(cluster.NumRSKinds))
	p.scr.clusterBudget = make([]int, g.Clusters)
	p.scr.fetchBuf = make([]*inflight, 0, cfg.FetchWidth)
	return p
}

// FillUnit exposes the fill unit (tests and experiments read its stats).
func (p *Pipeline) FillUnit() *core.FillUnit { return p.fill }

// Run drives the model until the stream is exhausted and the machine drains,
// then returns the collected statistics.
func (p *Pipeline) Run() *Stats {
	if p.cfg.MaxInsts != 0 {
		p.stream = &emu.LimitStream{S: p.stream, Budget: p.cfg.MaxInsts}
	}
	p.runLoop((*Pipeline).done)
	return p.Finish()
}

// runLoop advances the model one cycle at a time until stop reports true.
// Run stops at done (stream exhausted, machine empty); RunTo stops at
// drained (fetch paused at the segment limit, machine empty).
func (p *Pipeline) runLoop(stop func(*Pipeline) bool) {
	for !stop(p) {
		worked := p.cycle()
		if worked && len(p.S.PipeTrace) < p.cfg.TraceCycles {
			p.S.PipeTrace = append(p.S.PipeTrace, p.debugDump())
		}
		if worked {
			p.now++
		} else {
			p.now = p.nextEvent()
		}
		if p.now-p.lastRetireCycle > 2_000_000 {
			panic(&core.InvariantError{Msg: fmt.Sprintf(
				"pipeline: no retirement progress near cycle %d (rob=%d fetchQ=%d)",
				p.now, p.rob.len(), p.fetchQ.len())})
		}
	}
}

// RunTo advances the model until the total number of committed records
// consumed from the stream reaches limit and the in-flight instructions
// drain (limit 0 removes the pause and runs to stream exhaustion, like
// Run but without flushing the fill unit). It reports whether the stream
// is exhausted. Between RunTo calls the pipeline sits at a drained trace
// boundary — ROB, fetch and dispatch queues empty — which is the only
// kind of point Snapshot accepts. Limits are cumulative across calls:
// RunTo(k) then RunTo(2k) simulates 2k records in two segments. A
// segmented run is deterministic for a given segment schedule, and
// continuing after a pause is bit-identical whether the same Pipeline
// value keeps going or a Snapshot of it is Restored elsewhere first.
func (p *Pipeline) RunTo(limit uint64) bool {
	p.fetchLimit = limit
	p.runLoop((*Pipeline).drained)
	if !p.streamDone {
		p.pauseDrain()
	}
	return p.streamDone
}

// Finish completes a segmented run: it flushes the fill unit's partial
// trace and returns the collected statistics. Run calls it internally;
// RunTo callers invoke it once after the last segment.
func (p *Pipeline) Finish() *Stats {
	p.fill.Flush()
	p.S.Cycles = p.now
	p.S.BP = p.bp.S
	p.S.TC = p.tc.S
	p.S.Fill = p.fill.S
	return &p.S
}

// Consumed returns the number of committed records pulled from the stream
// so far (RunTo limits are expressed on this counter).
func (p *Pipeline) Consumed() uint64 { return p.consumed }

// CurrentCycle returns the simulated cycle the model has reached; between
// RunTo segments it is the cycle count Finish would report. Sampled
// simulation uses it to split a detailed window into an unmeasured warmup
// prefix and a measured remainder.
func (p *Pipeline) CurrentCycle() int64 { return p.now }

// Retired returns the number of instructions retired so far.
func (p *Pipeline) Retired() uint64 { return p.S.Retired }

func (p *Pipeline) done() bool {
	return p.streamDone && p.rob.len() == 0 && p.fetchQ.len() == 0
}

// fetchPaused reports whether fetch is paused at a RunTo segment limit.
func (p *Pipeline) fetchPaused() bool {
	return p.fetchLimit != 0 && p.consumed >= p.fetchLimit
}

// drained is the segmented-run stop condition: no further record can enter
// the machine (stream exhausted, or fetch paused with no buffered peek)
// and everything in flight has retired.
func (p *Pipeline) drained() bool {
	return (p.streamDone || p.fetchPaused()) && !p.havePeek &&
		p.rob.len() == 0 && p.fetchQ.len() == 0
}

// pauseDrain normalizes state at a paused segment boundary so that the
// continuation proceeds identically whether this Pipeline value keeps
// running or a snapshot of it is restored into a fresh one: the pending
// fetch redirect — whose instruction has necessarily retired by now — is
// resolved exactly as the next cycle would have resolved it, and
// fully-retired records are reclaimed into the pool (at a drained
// boundary every graveyard record is reclaimable, so the pool state is
// equivalent to the restored pipeline's empty pool: recycled records are
// zeroed on allocation either way).
func (p *Pipeline) pauseDrain() {
	p.clearRedirect()
	p.reclaim()
}

// cycle runs one machine cycle; it reports whether any state changed (used
// to fast-forward through idle periods).
//
//ctcp:hotpath
func (p *Pipeline) cycle() bool {
	worked := false
	if p.retire() {
		worked = true
	}
	p.clearRedirect()
	if p.issue() {
		worked = true
	}
	if p.dispatch() {
		worked = true
	}
	if p.rename() {
		worked = true
	}
	if p.fetch() {
		worked = true
	}
	return worked
}

// nextEvent returns the earliest future cycle at which anything can happen.
func (p *Pipeline) nextEvent() int64 {
	best := int64(1 << 62)
	consider := func(t int64) {
		if t > p.now && t < best {
			best = t
		}
	}
	for i := 0; i < p.rob.len(); i++ {
		inf := p.rob.at(i)
		if inf.issued && !inf.retired {
			consider(inf.doneAt)
		}
	}
	for c := range p.rsEntries {
		for _, inf := range p.rsEntries[c] {
			if t, _, _, _ := p.readiness(inf); t != unknown {
				consider(t)
			}
		}
	}
	if p.fetchQ.len() > 0 {
		consider(p.fetchQ.front().renameReady)
	}
	for c := range p.dispatchQ {
		if p.dispatchQ[c].len() > 0 {
			consider(p.dispatchQ[c].front().dispatchReady)
		}
	}
	if len(p.steerQ) > 0 {
		consider(p.steerQ[0].dispatchReady)
	}
	if p.pendingRedirect == nil && !p.streamDone && (p.havePeek || !p.fetchPaused()) {
		// When fetch is paused with nothing buffered, no fetch event can
		// fire until the next RunTo raises the limit; considering nextFetch
		// here would crawl the idle fast-forward one cycle at a time into
		// the retirement watchdog.
		consider(p.nextFetch)
	}
	if best == int64(1<<62) {
		return p.now + 1
	}
	return best
}

// --- stream helpers ---

// peek returns the next committed record without consuming it; ok is false
// once the stream is exhausted. The record is buffered by value (the old
// implementation heap-allocated a copy per instruction).
func (p *Pipeline) peek() (*emu.Committed, bool) {
	if p.havePeek {
		return &p.peekedRec, true
	}
	if p.streamDone || p.fetchPaused() {
		// A paused fetch is not stream exhaustion: the next RunTo segment
		// resumes pulling records exactly where this one stopped.
		return nil, false
	}
	rec, ok := p.stream.Next()
	if !ok {
		p.streamDone = true
		return nil, false
	}
	p.consumed++
	p.peekedRec = rec
	p.havePeek = true
	return &p.peekedRec, true
}

func (p *Pipeline) take() emu.Committed {
	p.havePeek = false
	return p.peekedRec
}

// --- fetch ---

// fetch pulls one fetch group per cycle from the trace cache or icache path.
//
//ctcp:hotpath
func (p *Pipeline) fetch() bool {
	if p.pendingRedirect != nil || p.now < p.nextFetch {
		return false
	}
	if p.fetchQ.len() >= 2*p.cfg.FetchWidth {
		return false
	}
	first, ok := p.peek()
	if !ok {
		return false
	}
	pc := first.PC
	group := p.groupSeq
	p.groupSeq++
	fetchLat := int64(p.cfg.FetchStages)
	consumed := p.scr.fetchBuf[:0]

	if tr := p.tc.Lookup(pc, p.predictCond); tr != nil {
		p.S.TCGroups++
		for i := range tr.Slots {
			s := &tr.Slots[i]
			r, ok := p.peek()
			if !ok || r.PC != s.PC {
				break // stream diverged (only possible after a redirect cut)
			}
			inf := p.newInflight(p.take(), true, group, s.Cluster, s.Profile)
			consumed = append(consumed, inf)
			if p.handleControl(inf, true) {
				break
			}
		}
		p.S.TCGroupInsts += uint64(len(consumed))
	} else {
		p.S.ICGroups++
		if !p.icache.Access(pc) {
			p.S.ICacheMisses++
			fetchLat += int64(p.cfg.ICacheMissLat)
		}
		lineEnd := (pc | uint64(p.cfg.ICache.LineSize-1)) + 1
		expect := pc
		for len(consumed) < p.cfg.FetchWidth {
			r, ok := p.peek()
			if !ok || r.PC != expect || r.PC >= lineEnd {
				break
			}
			slot := len(consumed)
			inf := p.newInflight(p.take(), false, group, p.geom.SlotCluster(slot), trace.Profile{})
			consumed = append(consumed, inf)
			if p.handleControl(inf, false) {
				break
			}
			if inf.rec.IsTakenControl() {
				break // conventional fetch cannot pass a taken branch
			}
			expect = inf.rec.NextPC
		}
		p.S.ICGroupInsts += uint64(len(consumed))
	}
	p.scr.fetchBuf = consumed[:0]
	if len(consumed) == 0 {
		// Defensive: should not happen (the first record always matches).
		p.nextFetch = p.now + 1
		return false
	}
	for _, inf := range consumed {
		inf.renameReady = p.now + fetchLat + int64(p.cfg.DecodeStages)
		p.fetchQ.push(inf)
	}
	p.nextFetch = p.now + 1 + p.btbBubble
	p.btbBubble = 0
	return true
}

func (p *Pipeline) newInflight(rec emu.Committed, fromTC bool, group uint64, cl int, prof trace.Profile) *inflight {
	inf := p.allocInflight()
	inf.rec = rec
	inf.fromTC = fromTC
	inf.group = group
	inf.cluster = cl
	inf.profile = prof
	inf.resultAt = unknown
	inf.doneAt = unknown
	if p.cfg.Strategy.SteersAtIssue() {
		inf.cluster = -1
	}
	class := rec.Inst.Op.Class()
	inf.isLoad = class.IsLoad()
	inf.isStore = class.IsStore()
	return inf
}

// handleControl performs fetch-time prediction bookkeeping for a just-
// consumed control instruction and reports whether the fetch group must stop
// (misprediction or unpredictable target).
func (p *Pipeline) handleControl(inf *inflight, fromTC bool) bool {
	in := inf.rec.Inst
	if !in.IsControl() {
		return false
	}
	switch {
	case in.IsCond():
		p.S.CondBranches++
		_, correct := p.bp.PredictAndTrainCond(inf.rec.PC, inf.rec.Taken)
		if !correct {
			p.S.Mispredicts++
			inf.mispredict = true
			p.pendingRedirect = inf
			return true
		}
		if inf.rec.Taken && !fromTC {
			// Conventional fetch needs the BTB for the taken target.
			if _, hit := p.bp.BTBLookup(inf.rec.PC); !hit {
				p.S.BTBBubbles++
				p.btbBubble = int64(p.cfg.BTBMissBubble)
			}
			p.bp.BTBInsert(inf.rec.PC, inf.rec.NextPC)
		}
	case in.Op == isa.BR:
		if !fromTC {
			if _, hit := p.bp.BTBLookup(inf.rec.PC); !hit {
				p.S.BTBBubbles++
				p.btbBubble = int64(p.cfg.BTBMissBubble)
			}
			p.bp.BTBInsert(inf.rec.PC, inf.rec.NextPC)
		}
	case in.Op == isa.JSR || in.Op == isa.JMP:
		target, hit := p.bp.BTBLookup(inf.rec.PC)
		p.bp.BTBInsert(inf.rec.PC, inf.rec.NextPC)
		if in.Op == isa.JSR {
			p.bp.PushReturn(inf.rec.PC + isa.PCStride)
		}
		if !hit || target != inf.rec.NextPC {
			p.S.IndirectMiss++
			inf.mispredict = true
			p.pendingRedirect = inf
			return true
		}
	case in.Op == isa.RET:
		target, ok := p.bp.PredictReturn()
		if !ok || target != inf.rec.NextPC {
			p.S.IndirectMiss++
			inf.mispredict = true
			p.pendingRedirect = inf
			return true
		}
	}
	return false
}

func (p *Pipeline) clearRedirect() {
	if r := p.pendingRedirect; r != nil && r.issued && r.doneAt <= p.now {
		p.pendingRedirect = nil
		if next := p.now + 1; next > p.nextFetch {
			p.nextFetch = next
		}
		p.S.FetchRedirects++
	}
}

// --- rename ---

// rename maps architectural sources to in-flight producers and admits
// instructions into the ROB.
//
//ctcp:hotpath
func (p *Pipeline) rename() bool {
	budget := p.cfg.FetchWidth
	worked := false
	for budget > 0 && p.fetchQ.len() > 0 {
		inf := p.fetchQ.front()
		if inf.renameReady > p.now {
			break
		}
		if p.rob.len() >= p.cfg.ROBSize {
			p.S.ROBFullStalls++
			break
		}
		if inf.isLoad && p.loadsInROB >= p.cfg.LoadQueue {
			p.S.LoadQFullStalls++
			break
		}
		s1, s2 := inf.rec.Inst.Srcs()
		inf.src = [2]isa.Reg{s1, s2}
		for k, r := range inf.src {
			if r == isa.NoReg {
				continue
			}
			// A value whose producer has already completed by rename time is
			// read from the register file; only still-in-flight results are
			// caught from the bypass/forwarding network.
			if prod := p.renameMap[r]; prod != nil && !prod.retired &&
				(prod.resultAt == unknown || prod.resultAt > p.now) {
				inf.prod[k] = prod
			}
		}
		inf.rfReady = p.now + int64(p.cfg.RenameStages+p.cfg.RFLat)
		inf.dispatchReady = p.now + int64(p.cfg.RenameStages+p.cfg.SteerStages)
		if d := inf.rec.Inst.Dest(); d != isa.NoReg {
			p.renameMap[d] = inf
		}
		inf.prevStore = p.lastStore
		if inf.isStore {
			p.lastStore = inf
		}
		if inf.isLoad {
			p.loadsInROB++
		}
		p.fetchQ.popFront()
		p.rob.push(inf)
		p.renamed++
		if p.cfg.Strategy.SteersAtIssue() {
			p.steerQ = append(p.steerQ, inf)
		} else {
			p.dispatchQ[inf.cluster].push(inf)
		}
		budget--
		worked = true
	}
	return worked
}

// --- dispatch (into reservation stations) ---

// wu indexes the flattened per-cycle [cluster][station] write-port scratch.
func (p *Pipeline) wu(c int, st cluster.RSKind) *int {
	return &p.scr.writeUsed[c*int(cluster.NumRSKinds)+int(st)]
}

// dispatch moves renamed instructions into reservation stations, applying
// the configured steering strategy and write-port limits.
//
//ctcp:hotpath
func (p *Pipeline) dispatch() bool {
	worked := false
	clear(p.scr.writeUsed)
	if p.cfg.Strategy.SteersAtIssue() {
		budget := p.geom.TotalWidth()
		for c := range p.scr.clusterBudget {
			p.scr.clusterBudget[c] = p.geom.Width
		}
		// Scan the steering window in age order; an instruction whose target
		// cluster is saturated does not block younger instructions bound for
		// other clusters.
		kept := p.steerQ[:0]
		scanned := 0
		for i, inf := range p.steerQ {
			if budget <= 0 || inf.dispatchReady > p.now || scanned >= 2*p.geom.TotalWidth() {
				kept = append(kept, p.steerQ[i:]...)
				break
			}
			scanned++
			c := p.steerTarget(inf)
			if c >= 0 {
				inf.cluster = c
				if p.insertRS(inf, c) {
					p.scr.clusterBudget[c]--
					budget--
					worked = true
					continue
				}
				inf.cluster = -1
			}
			kept = append(kept, inf)
		}
		for i := len(kept); i < len(p.steerQ); i++ {
			p.steerQ[i] = nil
		}
		p.steerQ = kept
		return worked
	}
	for c := 0; c < p.geom.Clusters; c++ {
		n := 0
		for n < p.geom.Width && p.dispatchQ[c].len() > 0 {
			inf := p.dispatchQ[c].front()
			if inf.dispatchReady > p.now {
				break
			}
			if !p.insertRS(inf, c) {
				break
			}
			p.dispatchQ[c].popFront()
			n++
			worked = true
		}
	}
	return worked
}

// steerTarget implements issue-time steering: send the instruction to the
// cluster generating one of its in-flight inputs (preferring the input
// expected to arrive last), else balance load; at most Width instructions
// per cluster per cycle.
func (p *Pipeline) steerTarget(inf *inflight) int {
	usable := func(c int) bool {
		if c < 0 || c >= p.geom.Clusters || p.scr.clusterBudget[c] <= 0 {
			return false
		}
		for _, st := range cluster.StationsFor(inf.rec.Inst.Op.Class()) {
			if p.rsCount[c][st] < p.cfg.RS.Entries && *p.wu(c, st) < p.cfg.RS.WritePorts {
				return true
			}
		}
		return false
	}
	// Prefer the producer whose value arrives later (the likely critical
	// input); both producers' clusters are known because dispatch is
	// in order.
	best := -1
	var bestTime int64 = -1
	for k := 0; k < 2; k++ {
		prod := inf.prod[k]
		if prod == nil || prod.retired || prod.cluster < 0 {
			continue
		}
		t := prod.resultAt
		if t == unknown {
			t = 1 << 60 // not yet issued: latest of all
		}
		if t > bestTime {
			bestTime = t
			best = prod.cluster
		}
	}
	if best >= 0 && usable(best) {
		return best
	}
	// Fall back: least-occupied usable cluster.
	target, bestOcc := -1, 1<<30
	for c := 0; c < p.geom.Clusters; c++ {
		if !usable(c) {
			continue
		}
		occ := 0
		for st := 0; st < int(cluster.NumRSKinds); st++ {
			occ += p.rsCount[c][st]
		}
		if occ < bestOcc {
			bestOcc, target = occ, c
		}
	}
	return target
}

func (p *Pipeline) insertRS(inf *inflight, c int) bool {
	stations := cluster.StationsFor(inf.rec.Inst.Op.Class())
	best := cluster.RSKind(-1)
	bestCount := 1 << 30
	for _, st := range stations {
		if p.rsCount[c][st] >= p.cfg.RS.Entries || *p.wu(c, st) >= p.cfg.RS.WritePorts {
			continue
		}
		if p.rsCount[c][st] < bestCount {
			bestCount = p.rsCount[c][st]
			best = st
		}
	}
	if best < 0 {
		return false
	}
	inf.station = best
	inf.inRS = true
	p.rsCount[c][best]++
	*p.wu(c, best)++
	p.rsEntries[c] = append(p.rsEntries[c], inf)
	return true
}

// --- issue / execute ---

// effFwd returns the forwarding latency from producer to consumer with the
// Figure 5 knobs applied.
func (p *Pipeline) effFwd(prod, cons *inflight) int64 {
	if p.cfg.ZeroAllFwdLat {
		return 0
	}
	same := prod.group == cons.group
	if p.cfg.ZeroIntraTrace && same {
		return 0
	}
	if p.cfg.ZeroInterTrace && !same {
		return 0
	}
	return int64(p.geom.ForwardLat(prod.cluster, cons.cluster))
}

// readiness computes when inf's operands are all available in its cluster.
// It returns the ready cycle (or unknown), the critical source, whether the
// critical input is forwarded, and the critical producer.
func (p *Pipeline) readiness(inf *inflight) (int64, core.CritSrc, bool, *inflight) {
	var t [2]int64
	var fwd [2]bool
	present := [2]bool{inf.src[0] != isa.NoReg, inf.src[1] != isa.NoReg}
	for k := 0; k < 2; k++ {
		if !present[k] {
			t[k] = 0
			continue
		}
		prod := inf.prod[k]
		if prod == nil {
			t[k] = inf.rfReady
			continue
		}
		if prod.resultAt == unknown {
			return unknown, core.CritNone, false, nil
		}
		t[k] = prod.resultAt + p.effFwd(prod, inf)
		fwd[k] = true
	}
	if inf.isLoad {
		// Conservative disambiguation: every older store's address must be
		// known (issued or retired) before the load may access memory.
		for st := inf.prevStore; st != nil && !st.retired; st = st.prevStore {
			if !st.issued {
				return unknown, core.CritNone, false, nil
			}
		}
	}
	// Identify the critical (last-arriving) input.
	crit := core.CritNone
	switch {
	case present[0] && present[1]:
		if t[1] > t[0] {
			crit = core.CritRS2
		} else {
			crit = core.CritRS1
		}
	case present[0]:
		crit = core.CritRS1
	case present[1]:
		crit = core.CritRS2
	}
	ready := maxI64(t[0], t[1])
	critFwd := false
	var critProd *inflight
	if crit != core.CritNone {
		k := int(crit) - 1
		critFwd = fwd[k]
		critProd = inf.prod[k]
		if critFwd && p.cfg.ZeroCritFwdLat {
			// Only the last-arriving forward becomes free.
			other := t[1-k]
			if !present[1-k] {
				other = 0
			}
			ready = maxI64(other, critProd.resultAt)
		}
	}
	return ready, crit, critFwd, critProd
}

func (p *Pipeline) freeFU(c int, class isa.Class) cluster.FUKind {
	for _, fu := range cluster.UnitsFor(class) {
		if p.fuFree[c][fu] <= p.now {
			return fu
		}
	}
	return cluster.FUKind(-1)
}

// issue wakes ready reservation-station entries and dispatches them to free
// functional units.
//
//ctcp:hotpath
func (p *Pipeline) issue() bool {
	worked := false
	for c := 0; c < p.geom.Clusters; c++ {
		entries := p.rsEntries[c]
		issuedAny := false
		for _, inf := range entries {
			ready, crit, critFwd, critProd := p.readiness(inf)
			if ready == unknown || ready > p.now {
				continue
			}
			class := inf.rec.Inst.Op.Class()
			fu := p.freeFU(c, class)
			if fu < 0 {
				continue
			}
			p.doIssue(inf, c, fu, crit, critFwd, critProd)
			issuedAny = true
			worked = true
		}
		if issuedAny {
			keep := entries[:0]
			for _, inf := range entries {
				if !inf.issued {
					keep = append(keep, inf)
				}
			}
			for i := len(keep); i < len(entries); i++ {
				entries[i] = nil
			}
			p.rsEntries[c] = keep
		}
	}
	return worked
}

func (p *Pipeline) doIssue(inf *inflight, c int, fu cluster.FUKind, crit core.CritSrc, critFwd bool, critProd *inflight) {
	class := inf.rec.Inst.Op.Class()
	lat := cluster.LatencyFor(class)
	inf.issued = true
	inf.inRS = false
	p.rsCount[c][inf.station]--
	p.fuFree[c][fu] = p.now + int64(lat.Issue)

	inf.critSrc = crit
	inf.critForwarded = critFwd
	if critFwd {
		inf.critProd = critProd
	}
	p.recordInputStats(inf)

	switch {
	case inf.isLoad:
		p.S.Loads++
		addrDone := p.now + int64(lat.Exec)
		barrier := addrDone
		var fwdStore *inflight
		for st := inf.prevStore; st != nil; st = st.prevStore {
			if st.retired {
				break
			}
			if st.resultAt > barrier {
				barrier = st.resultAt
			}
			if fwdStore == nil && overlaps(st.rec, inf.rec) {
				fwdStore = st
			}
		}
		if fwdStore != nil {
			p.S.StoreForwards++
			inf.resultAt = maxI64(barrier, fwdStore.resultAt) + 1
		} else {
			start := p.portTime(barrier)
			inf.resultAt = p.mem.Access(start, inf.rec.EA)
		}
		inf.doneAt = inf.resultAt
	case inf.isStore:
		p.S.Stores++
		inf.resultAt = p.now + int64(lat.Exec)
		inf.doneAt = inf.resultAt
	default:
		inf.resultAt = p.now + int64(lat.Exec)
		inf.doneAt = inf.resultAt
	}
}

func overlaps(store, load emu.Committed) bool {
	sEnd := store.EA + uint64(store.Size)
	lEnd := load.EA + uint64(load.Size)
	return store.EA < lEnd && load.EA < sEnd
}

// portTime books a data-cache port at or after t and returns the cycle used.
func (p *Pipeline) portTime(t int64) int64 {
	if t <= p.now {
		t = p.now
	}
	return p.ports.book(t, p.cfg.Mem.Ports)
}

func (p *Pipeline) recordInputStats(inf *inflight) {
	if inf.critSrc == core.CritNone {
		return
	}
	p.S.WithInputs++
	interTrace := false
	if inf.critForwarded {
		p.S.CritForwarded++
		prod := inf.critProd
		dist := p.geom.Distance(prod.cluster, inf.cluster)
		p.S.CritDistSum += uint64(dist)
		if dist == 0 {
			p.S.CritIntraCluster++
		}
		if prod.group != inf.group {
			interTrace = true
			p.S.CritInterTrace++
		}
		switch inf.critSrc {
		case core.CritRS1:
			p.S.CritFromRS1++
		case core.CritRS2:
			p.S.CritFromRS2++
		}
	} else {
		p.S.CritFromRF++
	}
	// Producer repeatability (Table 3): all forwarded inputs...
	var hist *pcStats
	for k := 0; k < 2; k++ {
		prod := inf.prod[k]
		if prod == nil || inf.src[k] == isa.NoReg {
			continue
		}
		p.S.FwdInputs++
		d := p.geom.Distance(prod.cluster, inf.cluster)
		p.S.FwdDistSum += uint64(d)
		if d == 0 {
			p.S.FwdIntraCluster++
		}
		if hist == nil {
			hist = p.pcHist.statsFor(inf.rec.PC, isa.PCStride)
		}
		if hist.lastProd[k] != 0 {
			if k == 0 {
				p.S.RS1Seen++
				if hist.lastProd[k] == prod.rec.PC {
					p.S.RS1Repeat++
				}
			} else {
				p.S.RS2Seen++
				if hist.lastProd[k] == prod.rec.PC {
					p.S.RS2Repeat++
				}
			}
		}
		hist.lastProd[k] = prod.rec.PC
	}
	// ...and critical inter-trace inputs only.
	if inf.critForwarded && interTrace {
		k := int(inf.critSrc) - 1
		if hist == nil {
			hist = p.pcHist.statsFor(inf.rec.PC, isa.PCStride)
		}
		if hist.lastCritInter[k] != 0 {
			if k == 0 {
				p.S.CritRS1InterSeen++
				if hist.lastCritInter[k] == inf.critProd.rec.PC {
					p.S.CritRS1InterRep++
				}
			} else {
				p.S.CritRS2InterSeen++
				if hist.lastCritInter[k] == inf.critProd.rec.PC {
					p.S.CritRS2InterRep++
				}
			}
		}
		hist.lastCritInter[k] = inf.critProd.rec.PC
	}
}

// --- retire ---

func (p *Pipeline) sbOccupied() int {
	keep := p.sbDrain[:0]
	for _, t := range p.sbDrain {
		if t > p.now {
			keep = append(keep, t)
		}
	}
	p.sbDrain = keep
	return len(p.sbDrain)
}

// retire drains completed instructions from the ROB head in program order,
// feeding the fill unit and the store buffer.
//
//ctcp:hotpath
func (p *Pipeline) retire() bool {
	budget := p.cfg.RetireWidth
	worked := false
	for budget > 0 && p.rob.len() > 0 {
		inf := p.rob.front()
		if !inf.issued || inf.doneAt > p.now {
			break
		}
		if inf.isStore {
			if p.sbOccupied() >= p.cfg.StoreBuffer {
				p.S.SBFullStalls++
				break
			}
			drain := p.lastDrain + 1
			if drain < p.now {
				drain = p.now
			}
			p.lastDrain = drain
			done := p.mem.Access(p.portTime(drain), inf.rec.EA)
			p.sbDrain = append(p.sbDrain, done)
		}
		inf.retired = true
		if inf.isLoad {
			p.loadsInROB--
		}
		p.rob.popFront()
		p.S.Retired++
		if inf.fromTC {
			p.S.RetiredFromTC++
		}
		info := p.retireInfo(inf)
		p.fill.Retire(info)
		if p.cfg.RetireHook != nil {
			p.cfg.RetireHook(info)
		}
		// Drop outgoing references so retired records don't chain-retain the
		// whole execution history; fields of *this* record stay valid for
		// any younger consumers still holding a pointer to it. The record
		// itself is parked in the graveyard until those consumers retire,
		// then recycled (see reclaim). Rename-visible aliases are severed
		// here so no new references can form after retirement.
		inf.prod[0], inf.prod[1] = nil, nil
		inf.critProd = nil
		inf.prevStore = nil
		if d := inf.rec.Inst.Dest(); d != isa.NoReg && p.renameMap[d] == inf {
			p.renameMap[d] = nil
		}
		if p.lastStore == inf {
			p.lastStore = nil
		}
		inf.freeAfter = p.renamed
		p.scr.graveyard.push(inf)
		p.lastRetireCycle = p.now
		budget--
		worked = true
	}
	if worked {
		p.reclaim()
	}
	return worked
}

func (p *Pipeline) retireInfo(inf *inflight) core.RetireInfo {
	info := core.RetireInfo{
		Rec:        inf.rec,
		FromTC:     inf.fromTC,
		Profile:    inf.profile,
		Cluster:    inf.cluster,
		FetchGroup: inf.group,
		CritSrc:    inf.critSrc,
	}
	if inf.critForwarded && inf.critProd != nil {
		info.CritForwarded = true
		info.CritProducerPC = inf.critProd.rec.PC
		info.CritProducerSeq = inf.critProd.rec.Seq
		info.CritProducerCluster = inf.critProd.cluster
		info.CritInterTrace = inf.critProd.group != inf.group
		info.CritProducerProfile = inf.critProd.profile
	}
	return info
}

// debugDump renders one cycle's occupancy for Config.TraceCycles. (It was
// named snapshot before the Snapshot/Restore checkpointing contract took
// that name.)
func (p *Pipeline) debugDump() string {
	var sb []byte
	sb = fmt.Appendf(sb, "cyc %6d | fetchQ %2d | rob %3d | rs", p.now, p.fetchQ.len(), p.rob.len())
	for c := 0; c < p.geom.Clusters; c++ {
		occ := 0
		for st := 0; st < int(cluster.NumRSKinds); st++ {
			occ += p.rsCount[c][st]
		}
		sb = fmt.Appendf(sb, " %2d", occ)
	}
	if p.pendingRedirect != nil {
		sb = append(sb, " | redirect"...)
	}
	sb = fmt.Appendf(sb, " | retired %d", p.S.Retired)
	return string(sb)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// RunProgram is a convenience wrapper: it executes prog on a fresh emulator
// and replays the committed stream through a pipeline with cfg.
func RunProgram(prog *isa.Program, cfg Config) *Stats {
	m := emu.New(prog)
	p := New(m, cfg)
	return p.Run()
}
