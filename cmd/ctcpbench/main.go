// Command ctcpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ctcpbench                      # everything, default budget
//	ctcpbench -exp fig6,table8     # selected artifacts
//	ctcpbench -insts 500000        # bigger per-run budget
//	ctcpbench -v                   # per-simulation progress on stderr
//	ctcpbench -microbench          # simulator-throughput report -> BENCH_pipeline.json
//	ctcpbench -cpuprofile cpu.out  # pprof capture of any of the above
//	ctcpbench -sample 50000 -sample-detail 25000 -sample-warmup 12500
//	                               # region-parallel sampled simulation
//	ctcpbench -resume ckpts/ -checkpoint-every 50000
//	                               # resumable runs: rerun continues a killed sweep
//
// A simulation that aborts (pathological configuration) no longer crashes
// the process: the failing key is recorded, every artifact that did
// complete is still printed, a failure summary goes to stderr, and the
// process exits non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"ctcp/internal/bench"
	"ctcp/internal/experiment"
	"ctcp/internal/workload"
)

// artifacts is the generation-order table of every paper artifact the tool
// can regenerate. The -exp flag usage and name validation are derived from
// it, so adding an entry here is the single step needed to expose it.
var artifacts = []struct {
	name string
	run  func(r *experiment.Runner) string
}{
	{"table1", func(r *experiment.Runner) string { return experiment.Table1(r).Render() }},
	{"fig4", func(r *experiment.Runner) string { return experiment.Figure4(r).Render() }},
	{"table2", func(r *experiment.Runner) string { return experiment.Table2(r).Render() }},
	{"fig5", func(r *experiment.Runner) string { return experiment.Figure5(r).Render() }},
	{"table3", func(r *experiment.Runner) string { return experiment.Table3(r).Render() }},
	{"fig6", func(r *experiment.Runner) string { return experiment.Figure6(r).Render() }},
	{"table8", func(r *experiment.Runner) string { return experiment.Table8(r).Render() }},
	{"fig7", func(r *experiment.Runner) string { return experiment.Figure7(r).Render() }},
	{"table9", func(r *experiment.Runner) string { return experiment.Table9(r).Render() }},
	{"table10", func(r *experiment.Runner) string { return experiment.Table10(r).Render() }},
	{"fig8", func(r *experiment.Runner) string { return experiment.Figure8(r).Render() }},
	{"ablation", func(r *experiment.Runner) string { return experiment.Ablation(r).Render() }},
	{"sweeps", func(r *experiment.Runner) string {
		return experiment.SweepTraceCache(r).Render() + "\n" +
			experiment.SweepROB(r).Render() + "\n" +
			experiment.SweepHopLatency(r).Render()
	}},
	{"fig9", func(r *experiment.Runner) string { return experiment.Figure9(r).Render() }},
}

// artifactNames renders the artifact list for flag usage and error messages.
func artifactNames() string {
	names := make([]string, 0, len(artifacts))
	for _, a := range artifacts {
		names = append(names, a.name)
	}
	return strings.Join(names, ",")
}

// cliOptions collects every parsed flag; run takes the struct instead of a
// positional-argument list that grew unreadable.
type cliOptions struct {
	exps       string
	insts      uint64
	par        int
	verbose    bool
	inject     bool
	micro      bool
	benchOut   string
	benchInsts uint64
	benchLabel string
	benchDate  string
	benchGate  string
	cpuProf    string
	memProf    string

	sampleInterval uint64
	sampleDetail   uint64
	sampleWarmup   uint64
	sampleWorkers  int
	resumeDir      string
	ckptEvery      uint64
}

// validate enforces the flag contract shared with experiment.Options:
// checkpoint spacing is meaningless without a resume directory, and the
// sampled and checkpointed modes are mutually exclusive.
func (o *cliOptions) validate() error {
	if o.ckptEvery != 0 && o.resumeDir == "" {
		return fmt.Errorf("-checkpoint-every requires -resume <dir>")
	}
	if o.sampleInterval != 0 && o.resumeDir != "" {
		return fmt.Errorf("-sample and -resume are mutually exclusive")
	}
	if o.resumeDir != "" {
		if err := os.MkdirAll(o.resumeDir, 0o755); err != nil {
			return fmt.Errorf("creating -resume directory: %w", err)
		}
	}
	return nil
}

// main only parses flags and owns the process exit code; the body lives in
// run so profile-teardown defers execute before os.Exit.
func main() {
	var o cliOptions
	flag.StringVar(&o.exps, "exp", "all", "comma-separated list: "+artifactNames()+" or 'all'")
	flag.Uint64Var(&o.insts, "insts", experiment.DefaultBudget, "committed instruction budget per run")
	flag.IntVar(&o.par, "par", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	flag.BoolVar(&o.verbose, "v", false, "log each simulation start/finish/failure to stderr")
	flag.BoolVar(&o.inject, "inject-fault", false, "fault-injection self-test: run one deliberately pathological configuration and verify the sweep degrades gracefully (exits non-zero)")
	flag.BoolVar(&o.micro, "microbench", false, "measure simulator throughput per kernel and write the JSON report instead of regenerating artifacts")
	flag.StringVar(&o.benchOut, "bench-out", "BENCH_pipeline.json", "output path for the -microbench report")
	flag.Uint64Var(&o.benchInsts, "bench-insts", bench.DefaultInsts, "committed instruction budget per -microbench run")
	flag.StringVar(&o.benchLabel, "bench-label", "", "record the -microbench measurement in the report's history array under this label (replacing a same-labeled entry)")
	flag.StringVar(&o.benchDate, "bench-date", "", "date recorded with -bench-label (e.g. 2026-08-08; defaults to today, UTC)")
	flag.StringVar(&o.benchGate, "bench-gate", "", "path to a committed bench record: fail if any kernel's fresh ns/cycle regresses more than 15% against its 'current' block")
	flag.StringVar(&o.cpuProf, "cpuprofile", "", "write a CPU profile of the run to this file")
	flag.StringVar(&o.memProf, "memprofile", "", "write a heap profile taken at exit to this file")
	flag.Uint64Var(&o.sampleInterval, "sample", 0, "region-parallel sampled simulation: checkpoint the functional emulator every N instructions and simulate the regions in detail concurrently (0 = full detail)")
	flag.Uint64Var(&o.sampleDetail, "sample-detail", 0, "instructions simulated in detail per region (0 = the whole region)")
	flag.Uint64Var(&o.sampleWarmup, "sample-warmup", 0, "warmup instructions per region excluded from the measurement (region 0 is always measured whole)")
	flag.IntVar(&o.sampleWorkers, "sample-workers", 0, "detailed-simulation workers for -sample (0 = GOMAXPROCS)")
	flag.StringVar(&o.resumeDir, "resume", "", "checkpoint directory: runs persist resumable state here and a rerun continues where a killed sweep stopped")
	flag.Uint64Var(&o.ckptEvery, "checkpoint-every", 0, "instructions between on-disk checkpoints (requires -resume; 0 = budget/4)")
	flag.Parse()
	os.Exit(run(&o))
}

func run(o *cliOptions) int {
	exps, insts, par, verbose := o.exps, o.insts, o.par, o.verbose
	inject, micro, benchOut, benchInsts := o.inject, o.micro, o.benchOut, o.benchInsts
	cpuProf, memProf := o.cpuProf, o.memProf
	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "ctcpbench: %v\n", err)
		return 1
	}
	if cpuProf != "" {
		f, err := os.Create(cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctcpbench: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ctcpbench: cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if memProf != "" {
		defer func() {
			f, err := os.Create(memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ctcpbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ctcpbench: memprofile: %v\n", err)
			}
		}()
	}

	if micro {
		if err := runMicrobench(benchOut, benchInsts, o.benchLabel, o.benchDate, o.benchGate); err != nil {
			fmt.Fprintf(os.Stderr, "ctcpbench: microbench: %v\n", err)
			return 1
		}
		return 0
	}

	opts := experiment.Options{
		Budget:          insts,
		Parallelism:     par,
		SampleInterval:  o.sampleInterval,
		SampleDetail:    o.sampleDetail,
		SampleWarmup:    o.sampleWarmup,
		SampleWorkers:   o.sampleWorkers,
		CheckpointDir:   o.resumeDir,
		CheckpointEvery: o.ckptEvery,
	}
	if verbose {
		var mu sync.Mutex
		opts.Progress = func(ev experiment.ProgressEvent) {
			mu.Lock()
			defer mu.Unlock()
			switch ev.Kind {
			case experiment.RunStarted:
				fmt.Fprintf(os.Stderr, "%-5s %s\n", ev.Kind, ev.Key)
			case experiment.RunCompleted:
				fmt.Fprintf(os.Stderr, "%-5s %s (%v)\n", ev.Kind, ev.Key, ev.Wall.Round(time.Millisecond))
			case experiment.RunFailed:
				fmt.Fprintf(os.Stderr, "%-5s %s: %v\n", ev.Kind, ev.Key, ev.Err)
			}
		}
	}
	r := experiment.NewRunner(opts)
	if inject {
		// A geometry with no clusters gives slot steering no valid target;
		// the run aborts with a SimError that must be recorded, not fatal.
		bad := experiment.BaseConfig()
		bad.Geom.Clusters = 0
		if bm, ok := workload.ByName("gzip"); ok {
			r.RunErr(bm, "inject-fault", bad)
		}
	}
	known := map[string]bool{}
	for _, e := range artifacts {
		known[e.name] = true
	}
	want := map[string]bool{}
	if exps == "all" {
		want = known
	} else {
		for _, name := range strings.Split(exps, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				fmt.Fprintf(os.Stderr, "ctcpbench: unknown experiment %q (one of: %s, or 'all')\n", name, artifactNames())
				return 1
			}
			want[name] = true
		}
	}

	fmt.Printf("ctcpbench: budget %d instructions per run\n\n", insts)
	ran := 0
	var failedArtifacts []string
	for _, e := range artifacts {
		if !want[e.name] {
			continue
		}
		start := time.Now()
		out, err := renderArtifact(func() string { return e.run(r) })
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctcpbench: %s failed: %v\n\n", e.name, err)
			failedArtifacts = append(failedArtifacts, e.name)
			ran++
			continue
		}
		fmt.Println(out)
		fmt.Printf("[%s regenerated in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "ctcpbench: no matching experiments (see -exp)")
		return 1
	}

	st := r.Stats()
	fmt.Printf("runner: %s\n", st)
	exit := 0
	if sum := r.FailureSummary(); sum != "" {
		fmt.Fprint(os.Stderr, "ctcpbench: "+sum)
		exit = 1
	}
	if len(failedArtifacts) > 0 {
		fmt.Fprintf(os.Stderr, "ctcpbench: %d artifact(s) failed to render: %s\n",
			len(failedArtifacts), strings.Join(failedArtifacts, ", "))
		exit = 1
	}
	return exit
}

// runMicrobench measures simulator throughput for every tracked kernel and
// writes the JSON report. A baseline block already present in the output
// file is preserved verbatim (it records the pre-optimization model and must
// not be overwritten by re-runs), as is the recorded history; when the file
// is new, the frozen bench.Baseline() measurement seeds it. A non-empty
// label appends the fresh measurement to the history (replacing a
// same-labeled entry), and a non-empty gatePath compares it against that
// file's committed "current" block, failing on a >15% ns/cycle regression.
func runMicrobench(path string, insts uint64, label, date, gatePath string) error {
	file := bench.File{Baseline: bench.Baseline()}
	if old, err := os.ReadFile(path); err == nil {
		var prev bench.File
		if err := json.Unmarshal(old, &prev); err == nil && len(prev.Baseline.Kernels) > 0 {
			file.Baseline = prev.Baseline
			file.History = prev.History
		}
	}
	fmt.Printf("ctcpbench: measuring simulator throughput (%d insts/run, strategy %s)\n",
		insts, file.Baseline.Strategy)
	cur, err := bench.Run(insts)
	if err != nil {
		return err
	}
	file.Current = cur
	micro, err := bench.RunMicro()
	if err != nil {
		return err
	}
	file.Micro = micro
	fmt.Printf("micro: emu %.1f ns/inst (generic %.1f), assign hit %.1f ns/trace (miss %.1f)\n",
		micro.EmuNsPerInst, micro.EmuGenericNsPerInst,
		micro.AssignHitNsPerTrace, micro.AssignMissNsPerTrace)
	if label != "" {
		if date == "" {
			date = time.Now().UTC().Format("2006-01-02")
		}
		if !file.RecordHistory(cur, label, date) {
			fmt.Printf("history: last entry %q already records these numbers; keeping it unchanged\n", label)
		}
	}

	strat, err := bench.RunStrategies(insts)
	if err != nil {
		return err
	}
	file.Strategies = strat

	// Sampled-simulation speedup: measured once per report on the longest
	// kernel, with workers/NumCPU recorded so the number stays honest on
	// machines with little parallelism.
	samp, err := bench.RunSample(bench.SampleInsts, 4)
	if err != nil {
		return err
	}
	file.Sample = samp
	fmt.Printf("sampled simulation: %s %d insts, %d workers on %d CPUs: %.2fx wall-clock, IPC %.4f vs %.4f (%+.2f%%)\n",
		samp.Kernel, samp.Insts, samp.Workers, samp.NumCPU, samp.Speedup,
		samp.SampledIPC, samp.FullIPC, 100*samp.IPCRelErr)

	names := make([]string, 0, len(cur.Kernels))
	for name := range cur.Kernels {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-10s %12s %14s %12s %14s\n", "kernel", "ns/cycle", "cycles/s", "allocs/op", "vs baseline")
	for _, name := range names {
		m := cur.Kernels[name]
		speedup := "-"
		if b, ok := file.Baseline.Kernels[name]; ok && m.CyclesPerSec > 0 && b.CyclesPerSec > 0 {
			speedup = fmt.Sprintf("%.2fx, %.1fx allocs",
				m.CyclesPerSec/b.CyclesPerSec,
				float64(b.AllocsPerOp)/float64(maxInt64(m.AllocsPerOp, 1)))
		}
		fmt.Printf("%-10s %12.1f %14.0f %12d %14s\n", name, m.NsPerCycle, m.CyclesPerSec, m.AllocsPerOp, speedup)
	}

	fmt.Printf("\n%-14s %12s (gzip, per strategy family)\n", "strategy", "ns/cycle")
	for _, k := range bench.StrategyFamilies() {
		if m, ok := strat[k.String()]; ok {
			fmt.Printf("%-14s %12.1f\n", k.String(), m.NsPerCycle)
		}
	}

	buf, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("ctcpbench: report written to %s\n", path)

	// Gate last, after the artifact is on disk, so a failing run still
	// leaves the fresh numbers inspectable.
	if gatePath != "" {
		old, err := os.ReadFile(gatePath)
		if err != nil {
			return fmt.Errorf("bench-gate: %w", err)
		}
		var committed bench.File
		if err := json.Unmarshal(old, &committed); err != nil {
			return fmt.Errorf("bench-gate: parsing %s: %w", gatePath, err)
		}
		if err := bench.Gate(committed.Current, cur, 0.15); err != nil {
			return fmt.Errorf("bench-gate vs %s: %w", gatePath, err)
		}
		fmt.Printf("ctcpbench: bench-gate passed (within 15%% of %s)\n", gatePath)
	}
	return nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// renderArtifact runs one artifact builder, converting a panic anywhere in
// the build/render path into an error so the remaining artifacts still run.
func renderArtifact(run func() string) (out string, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("panic: %v", rec)
		}
	}()
	return run(), nil
}
