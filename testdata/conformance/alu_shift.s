; conformance: SLL/SRL/SRA over a sweep of shift amounts, including
; arithmetic shifts of a negative value (register-operand shift counts).
        .entry main
main:   movi    r1, -123456
        movi    r2, 1
        movi    r3, 0           ; checksum
        movi    r4, 0           ; shift amount 0,7,...,56
sh:     sll     r2, r4, r5
        srl     r1, r4, r6
        sra     r1, r4, r7
        add     r3, r5, r3
        xor     r3, r6, r3
        add     r3, r7, r3
        add     r4, 7, r4
        cmplt   r4, 63, r8
        bne     r8, sh
        sll     r1, 2, r9       ; immediate-count forms
        srl     r1, 2, r10
        sra     r1, 2, r11
        add     r9, r10, r9
        add     r9, r11, r9
        xor     r3, r9, r3
        out     r3
        halt
