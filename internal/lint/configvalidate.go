package lint

import (
	"go/ast"
	"go/types"
)

// ConfigValidate enforces that every exported field of pipeline.Config is
// referenced somewhere in its Validate path (the Validate method plus every
// intra-package function it transitively calls). Config is the single entry
// point for all of Table 7's architectural parameters; a field added for a
// new experiment knob but never audited in Validate is how a zero ROB size
// or a negative latency reaches the cycle model and dies as a mid-run
// invariant panic instead of an immediate, named configuration error. Fields
// with genuinely no invariant are still referenced (`_ = c.Field`) so the
// audit is visible and complete.
var ConfigValidate = &Analyzer{
	Name: "configvalidate",
	Doc:  "every exported pipeline.Config field must be referenced in Validate",
	Match: func(pkgPath string) bool {
		return pathIn(pkgPath, "internal/pipeline")
	},
	Run: runConfigValidate,
}

func runConfigValidate(p *Pass) {
	// Locate `type Config struct` and its field declarations.
	var (
		cfgType   *types.Named
		fieldDecl = map[types.Object]*ast.Ident{}
	)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Config" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				named, ok := p.Pkg.Info.Defs[ts.Name].Type().(*types.Named)
				if !ok {
					continue
				}
				cfgType = named
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						if name.IsExported() {
							fieldDecl[p.Pkg.Info.Defs[name]] = name
						}
					}
				}
			}
		}
	}
	if cfgType == nil {
		return
	}

	// Locate the Validate method and the package's function declarations.
	decls, _ := packageFuncs(p)
	var validate *ast.FuncDecl
	for fn, d := range decls {
		sig := fn.Type().(*types.Signature)
		if fn.Name() != "Validate" || sig.Recv() == nil {
			continue
		}
		if recvNamed(sig.Recv().Type()) == cfgType {
			validate = d
		}
	}
	if validate == nil {
		p.Reportf(cfgType.Obj().Pos(), "Config has no Validate method; every exported field needs a validation/defaulting audit")
		return
	}

	// Walk Validate and its intra-package callees, collecting Config field
	// references.
	referenced := map[types.Object]bool{}
	visited := map[*ast.FuncDecl]bool{}
	queue := []*ast.FuncDecl{validate}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		if visited[d] {
			continue
		}
		visited[d] = true
		ast.Inspect(d, func(n ast.Node) bool {
			if se, ok := n.(*ast.SelectorExpr); ok {
				if sel, ok := p.Pkg.Info.Selections[se]; ok && sel.Kind() == types.FieldVal &&
					recvNamed(sel.Recv()) == cfgType {
					referenced[sel.Obj()] = true
				}
			}
			return true
		})
		for _, callee := range calleeDecls(p, d, decls) {
			queue = append(queue, callee)
		}
	}

	for obj, ident := range fieldDecl {
		if !referenced[obj] {
			p.Reportf(ident.Pos(), "exported Config field %s is never referenced in the Validate path; add a check (or an explicit `_ = c.%s` audit)", obj.Name(), obj.Name())
		}
	}
}

// recvNamed unwraps a (possibly pointer) receiver or selection type to its
// named type.
func recvNamed(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// packageFuncs maps every function/method declared in the package to its
// declaration.
func packageFuncs(p *Pass) (map[*types.Func]*ast.FuncDecl, []*ast.FuncDecl) {
	decls := map[*types.Func]*ast.FuncDecl{}
	var order []*ast.FuncDecl
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
					order = append(order, fd)
				}
			}
		}
	}
	return decls, order
}

// calleeDecls resolves the static intra-package calls made inside d.
func calleeDecls(p *Pass, d *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	ast.Inspect(d, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		if fn, ok := p.Pkg.Info.Uses[id].(*types.Func); ok {
			if callee, ok := decls[fn]; ok {
				out = append(out, callee)
			}
		}
		return true
	})
	return out
}
