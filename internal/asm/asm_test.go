package asm

import (
	"strings"
	"testing"

	"ctcp/internal/emu"
	"ctcp/internal/isa"
)

func mustAssemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func runProg(t *testing.T, p *isa.Program) *emu.Machine {
	t.Helper()
	m := emu.New(p)
	if _, err := m.Run(100000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestAssembleSumLoop(t *testing.T) {
	m := runProg(t, mustAssemble(t, `
        ; sum 1..10
        movi  r1, 10
        movi  r2, 0
loop:   add   r2, r1, r2
        sub   r1, 1, r1
        bne   r1, loop
        out   r2
        halt
`))
	if m.Regs[isa.R(2)] != 55 {
		t.Errorf("sum = %d, want 55", m.Regs[isa.R(2)])
	}
}

func TestAssembleDataAndLoads(t *testing.T) {
	m := runProg(t, mustAssemble(t, `
        movi  r1, tbl
        ldq   r2, 0(r1)
        ldq   r3, 8(r1)
        add   r2, r3, r4
        ldbu  r5, bytes+1(r31)   ; absolute addressing via zero base
        halt
        .data
tbl:    .quad 40, 2
bytes:  .byte 9, 7
`))
	if m.Regs[isa.R(4)] != 42 {
		t.Errorf("r4 = %d, want 42", m.Regs[isa.R(4)])
	}
	if m.Regs[isa.R(5)] != 7 {
		t.Errorf("r5 = %d, want 7", m.Regs[isa.R(5)])
	}
}

func TestAssembleCallRet(t *testing.T) {
	m := runProg(t, mustAssemble(t, `
        .entry main
double: add  r1, r1, r1
        ret
main:   movi r1, 21
        movi r9, double
        jsr  ra, (r9)
        halt
`))
	if m.Regs[isa.R(1)] != 42 {
		t.Errorf("r1 = %d, want 42", m.Regs[isa.R(1)])
	}
}

func TestAssembleFP(t *testing.T) {
	m := runProg(t, mustAssemble(t, `
        movi  r1, 2
        cvtqt r1, f1
        mult  f1, f1, f2
        addt  f2, f1, f3     ; 6.0
        cvttq f3, r2
        halt
`))
	if m.Regs[isa.R(2)] != 6 {
		t.Errorf("r2 = %d, want 6", m.Regs[isa.R(2)])
	}
}

func TestAssembleStores(t *testing.T) {
	m := runProg(t, mustAssemble(t, `
        movi  r1, buf
        movi  r2, 0x1234
        stq   r2, 0(r1)
        stw   r2, 8(r1)
        ldq   r3, 0(r1)
        ldw   r4, 8(r1)
        halt
        .data
buf:    .space 16
`))
	if m.Regs[isa.R(3)] != 0x1234 || m.Regs[isa.R(4)] != 0x1234 {
		t.Errorf("r3=%#x r4=%#x", m.Regs[isa.R(3)], m.Regs[isa.R(4)])
	}
}

func TestAssembleAsciiAndAlign(t *testing.T) {
	p := mustAssemble(t, `
        halt
        .data
s:      .asciiz "hi"
        .align 8
q:      .quad 1
`)
	sAddr, qAddr := p.Symbols["s"], p.Symbols["q"]
	if qAddr%8 != 0 {
		t.Errorf("q not aligned: %#x", qAddr)
	}
	if got := string(p.Data[sAddr-p.DataBase : sAddr-p.DataBase+3]); got != "hi\x00" {
		t.Errorf("string data = %q", got)
	}
}

func TestAssembleMovPseudo(t *testing.T) {
	m := runProg(t, mustAssemble(t, `
        movi r1, 5
        mov  r2, r1
        halt
`))
	if m.Regs[isa.R(2)] != 5 {
		t.Errorf("mov failed: r2 = %d", m.Regs[isa.R(2)])
	}
}

func TestAssembleCharLiteral(t *testing.T) {
	m := runProg(t, mustAssemble(t, `
        movi r1, 'A'
        halt
`))
	if m.Regs[isa.R(1)] != 'A' {
		t.Errorf("r1 = %d, want %d", m.Regs[isa.R(1)], 'A')
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":    "frobnicate r1, r2, r3\n",
		"duplicate symbol":    "x: nop\nx: nop\n",
		"undefined symbol":    "movi r1, nowhere\nhalt\n",
		"instruction in data": ".data\nadd r1, r2, r3\n",
		"bad register":        "add r99, r2, r3\n",
		"bad operand count":   "add r1, r2\n",
		"unknown directive":   ".bogus 3\n",
		"bad align":           ".data\n.align 3\n",
		"undefined entry":     ".entry missing\nhalt\n",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: assembled without error", name)
		} else if _, ok := err.(*Error); !ok {
			t.Errorf("%s: error type %T, want *Error", name, err)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus r1\n")
	aerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if aerr.Line != 3 {
		t.Errorf("error line = %d, want 3", aerr.Line)
	}
	if !strings.Contains(aerr.Error(), "line 3") {
		t.Errorf("error text %q lacks line info", aerr.Error())
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
main:   movi r1, 10
loop:   sub  r1, 1, r1
        bne  r1, loop
        halt
`
	p := mustAssemble(t, src)
	dis := Disassemble(p)
	for _, want := range []string{"main:", "loop:", "movi r1, 10", "sub r1, 1, r1", "halt"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
	// Reassembling the disassembly is not supported (it prints addresses),
	// but every encoded instruction must round-trip through the binary form.
	for _, inst := range p.Text {
		out, err := isa.Decode(inst.Encode())
		if err != nil || out != inst {
			t.Errorf("binary round trip failed for %v", inst)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	m := runProg(t, mustAssemble(t, `
   # full line comment

        movi r1, 1   ; trailing
        halt
`))
	if m.Regs[isa.R(1)] != 1 {
		t.Error("comment handling broke execution")
	}
}

func TestMultipleLabelsSameAddress(t *testing.T) {
	p := mustAssemble(t, "a: b: nop\nhalt\n")
	if p.Symbols["a"] != p.Symbols["b"] {
		t.Error("stacked labels differ")
	}
}
