package lint

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// wantKey identifies one expected diagnostic: fixture file base name, line,
// rule.
type wantKey struct {
	file string
	line int
	rule string
}

// parseWant scans a fixture package's comments for `want:<rule>` markers. A
// marker means "at least one diagnostic of <rule> on this line"; every line
// without one must stay silent. The fixtures also carry //ctcp:lint-ok
// comments (both the trailing and the comment-above form), so the same
// bidirectional comparison exercises suppression: a suppressed line has no
// want marker and must produce nothing.
func parseWant(pkg *Package) map[wantKey]bool {
	want := map[wantKey]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, field := range strings.Fields(c.Text) {
					rule, ok := strings.CutPrefix(field, "want:")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					want[wantKey{filepath.Base(pos.Filename), pos.Line, rule}] = true
				}
			}
		}
	}
	return want
}

// TestAnalyzerFixtures loads each analyzer's fixture under an import path the
// analyzer scopes to and compares its diagnostics against the fixture's
// want markers in both directions.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		dir        string
		importPath string
		analyzer   *Analyzer
	}{
		{"maporder", "ctcp/internal/experiment", MapOrder},
		{"hotalloc", "ctcp/internal/fixture", HotAlloc},
		{"nondet", "ctcp/internal/emu", NonDet},
		{"floateq", "ctcp/internal/stats", FloatEq},
		{"configvalidate", "ctcp/internal/pipeline", ConfigValidate},
		{"configmissing", "ctcp/internal/pipeline", ConfigValidate},
		{"snapcomplete", "ctcp/internal/fixture", SnapComplete},
		{"writecheck", "ctcp/cmd/fixture", WriteCheck},
		{"writecheck_serve", "ctcp/internal/serve", WriteCheck},
		{"lockheld", "ctcp/internal/serve", LockHeld},
		{"lockorder", "ctcp/internal/serve", LockOrder},
		{"goroleak", "ctcp/internal/serve", GoroLeak},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			if tc.analyzer.Match != nil && !tc.analyzer.Match(tc.importPath) {
				t.Fatalf("case error: %s does not match import path %s", tc.analyzer.Name, tc.importPath)
			}
			// A fresh Loader per case keeps fixture packages loaded under
			// synthetic module paths out of each other's memo tables.
			l, err := NewLoader(".")
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := l.LoadDirAs(filepath.Join("testdata", "src", tc.dir), tc.importPath)
			if err != nil {
				t.Fatal(err)
			}
			got := Run([]*Package{pkg}, []*Analyzer{tc.analyzer})
			want := parseWant(pkg)

			seen := map[wantKey]bool{}
			for _, d := range got {
				k := wantKey{filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule}
				if !want[k] {
					t.Errorf("unexpected diagnostic: %s", d)
					continue
				}
				seen[k] = true
			}
			var missing []string
			for k := range want { //ctcp:lint-ok maporder -- missing-set is sorted before reporting
				if !seen[k] {
					missing = append(missing, k.file+":"+itoa(k.line)+": "+k.rule)
				}
			}
			sort.Strings(missing)
			for _, m := range missing {
				t.Errorf("missing diagnostic: %s", m)
			}
		})
	}
}

// TestSuppressionAudit runs maporder + lockheld over the audit fixture and
// checks Audit in both directions: the used //ctcp:lint-ok and
// //ctcp:coldlock waivers stay silent, the stale ones are reported at the
// waiver's own line (marked want:suppressaudit inside the waiver comment).
func TestSuppressionAudit(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDirAs(filepath.Join("testdata", "src", "suppressaudit"), "ctcp/internal/serve")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := []*Analyzer{MapOrder, LockHeld}
	for _, d := range Run([]*Package{pkg}, analyzers) {
		t.Errorf("fixture should lint clean before the audit, got: %s", d)
	}
	got := Audit([]*Package{pkg}, analyzers)
	want := parseWant(pkg)

	seen := map[wantKey]bool{}
	for _, d := range got {
		k := wantKey{filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule}
		if !want[k] {
			t.Errorf("unexpected audit diagnostic: %s", d)
			continue
		}
		seen[k] = true
	}
	var missing []string
	for k := range want { //ctcp:lint-ok maporder -- missing-set is sorted before reporting
		if !seen[k] {
			missing = append(missing, k.file+":"+itoa(k.line)+": "+k.rule)
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("missing audit diagnostic: %s", m)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestModuleLintsClean is the acceptance gate for the annotations and
// suppressions in the tree itself: the full registry over every package in
// the module must produce zero diagnostics. The hot path passes hotalloc on
// its own merits (no suppressions), so any new allocating construct reached
// from a //ctcp:hotpath root fails this test with a file:line finding.
func TestModuleLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module (plus stdlib sources)")
	}
	l, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("%s", d.String())
	}
	// The audit gate rides along: no suppression or coldlock annotation in
	// the tree may be stale.
	for _, d := range Audit(pkgs, All()) {
		t.Errorf("%s", d.String())
	}
}
