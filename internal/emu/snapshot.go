package emu

import (
	"sort"

	"ctcp/internal/isa"
	"ctcp/internal/snap"
)

// This file implements the snap.Checkpointable contract for the functional
// simulator: Memory, Machine, and the Stream wrappers. Everything here is
// architectural state — the emulator has almost no scratch state; the
// excluded fields are Memory's one-entry page-translation cache
// (lastIdx/lastPage), rebuilt lazily after restore, and Machine's predecoded
// uop table (pred/predBase), derived from the immutable program at
// construction (see predecode.go).

// Snapshot serializes the memory contents: every non-zero page, in
// ascending page-index order. All-zero pages are skipped (reads of
// untouched memory return zero anyway), so the encoding — like Checksum —
// depends only on the byte contents, not on which zero pages were touched.
func (m *Memory) Snapshot(w *snap.Writer) {
	w.Begin("memory")
	idxs := make([]uint64, 0, len(m.pages))
	for idx, p := range m.pages { //ctcp:lint-ok maporder -- keys are collected and sorted before use
		if !p.isZero() {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	w.Int(len(idxs))
	for _, idx := range idxs {
		w.U64(idx)
		w.Bytes(m.pages[idx][:])
	}
	w.End()
}

// Restore replaces the memory contents with the snapshot's pages. The
// page-translation cache is scratch and is reset, not restored.
func (m *Memory) Restore(r *snap.Reader) {
	r.Begin("memory")
	n := r.Int()
	if r.Err() != nil {
		return
	}
	m.pages = make(map[uint64]*page, n)
	m.lastIdx, m.lastPage = 0, nil
	for i := 0; i < n; i++ {
		idx := r.U64()
		b := r.Bytes()
		if r.Err() != nil {
			return
		}
		if len(b) != pageSize {
			r.Failf("memory page %#x has %d bytes (want %d)", idx, len(b), pageSize)
			return
		}
		p := new(page)
		copy(p[:], b)
		m.pages[idx] = p
	}
	r.End()
}

func (p *page) isZero() bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// Snapshot serializes the machine: register file, PC, commit count, halt
// and fault state, OUT checksum, and the full memory image. The program
// itself is not serialized — a snapshot can only be restored into a machine
// constructed over the same program, which is enforced by fingerprinting
// the program layout.
func (m *Machine) Snapshot(w *snap.Writer) {
	w.Begin("machine")
	// The predecoded uop table is derived state: a pure function of the
	// immutable program image, built once in New and valid for the machine's
	// whole lifetime, so it is neither serialized nor rebuilt on restore.
	_ = m.pred
	_ = m.predBase
	w.U64(m.prog.Entry)
	w.U64(m.prog.TextBase)
	w.U64(m.prog.TextEnd())
	w.U64(m.prog.DataBase)
	w.Int(len(m.prog.Data))
	w.U64Slice(m.Regs[:])
	w.U64(m.PC)
	w.Bool(m.halted)
	w.U64(m.seq)
	if m.fault != nil {
		w.Bool(true)
		if f, ok := m.fault.(*Fault); ok {
			w.U64(f.PC)
			w.String(f.Reason)
		} else {
			w.U64(m.PC)
			w.String(m.fault.Error())
		}
	} else {
		w.Bool(false)
	}
	w.U64(m.OutHash)
	w.U64Slice(m.OutValues)
	m.Mem.Snapshot(w)
	w.End()
}

// Restore rebuilds the machine state from r. The receiver must have been
// constructed with New over the same program the snapshot was taken from.
func (m *Machine) Restore(r *snap.Reader) {
	r.Begin("machine")
	r.Expect("program entry", m.prog.Entry)
	r.Expect("program text base", m.prog.TextBase)
	r.Expect("program text end", m.prog.TextEnd())
	r.Expect("program data base", m.prog.DataBase)
	r.ExpectInt("program data size", len(m.prog.Data))
	regs := r.U64Slice()
	if r.Err() == nil && len(regs) != isa.NumRegs {
		r.Failf("register file has %d entries (want %d)", len(regs), isa.NumRegs)
	}
	if r.Err() != nil {
		return
	}
	copy(m.Regs[:], regs)
	m.PC = r.U64()
	m.halted = r.Bool()
	m.seq = r.U64()
	if r.Bool() {
		pc := r.U64()
		reason := r.String()
		m.fault = &Fault{PC: pc, Reason: reason}
	} else {
		m.fault = nil
	}
	m.OutHash = r.U64()
	m.OutValues = r.U64Slice()
	m.Mem.Restore(r)
	r.End()
}

// Snapshot serializes the budget wrapper and delegates to the underlying
// stream, which must itself be checkpointable.
func (l *LimitStream) Snapshot(w *snap.Writer) {
	w.Begin("limitstream")
	w.U64(l.Budget)
	w.U64(l.used)
	// The StreamInto cache is derived from S, which never changes after
	// construction: re-derived lazily on the restored side.
	_ = l.into
	_ = l.intoKnown
	cp, ok := l.S.(snap.Checkpointable)
	if !ok {
		w.Failf("limitstream: underlying stream %T is not checkpointable", l.S)
		return
	}
	cp.Snapshot(w)
	w.End()
}

// Restore rebuilds the budget cursor and delegates to the underlying
// stream.
func (l *LimitStream) Restore(r *snap.Reader) {
	r.Begin("limitstream")
	l.Budget = r.U64()
	l.used = r.U64()
	cp, ok := l.S.(snap.Checkpointable)
	if !ok {
		r.Failf("limitstream: underlying stream %T is not checkpointable", l.S)
		return
	}
	cp.Restore(r)
	r.End()
}

// Snapshot serializes the replay cursor. The records themselves are not
// serialized — the restoring side must provide an identical Recs slice,
// which is enforced by length fingerprinting (tests own the contents).
func (s *SliceStream) Snapshot(w *snap.Writer) {
	w.Begin("slicestream")
	w.Int(len(s.Recs))
	w.Int(s.pos)
	w.End()
}

// Restore rebuilds the replay cursor.
func (s *SliceStream) Restore(r *snap.Reader) {
	r.Begin("slicestream")
	r.ExpectInt("slicestream record count", len(s.Recs))
	s.pos = r.Int()
	r.End()
}

// Snapshot serializes one committed-instruction record (a leaf value: no
// section of its own).
func (c *Committed) Snapshot(w *snap.Writer) {
	w.U64(c.Seq)
	w.U64(c.PC)
	c.Inst.Snapshot(w)
	w.U64(c.NextPC)
	w.Bool(c.Taken)
	w.U64(c.EA)
	w.U8(c.Size)
}

// Restore rebuilds one committed-instruction record.
func (c *Committed) Restore(r *snap.Reader) {
	c.Seq = r.U64()
	c.PC = r.U64()
	c.Inst.Restore(r)
	c.NextPC = r.U64()
	c.Taken = r.Bool()
	c.EA = r.U64()
	c.Size = r.U8()
}
